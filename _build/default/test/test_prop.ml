(* Tests for Abonn_prop: soundness of interval and DeepPoly bounds
   (sampled inputs always fall inside certified intervals; the certified
   margin lower-bounds every concrete margin), relative tightness
   (DeepPoly >= IBP), split-constraint folding and infeasibility, and
   exactness on purely linear networks. *)

module Matrix = Abonn_tensor.Matrix
module Vector = Abonn_tensor.Vector
module Rng = Abonn_util.Rng
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem
module Layer = Abonn_nn.Layer
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Bounds = Abonn_prop.Bounds
module Outcome = Abonn_prop.Outcome
module Interval = Abonn_prop.Interval
module Deeppoly = Abonn_prop.Deeppoly
module Appver = Abonn_prop.Appver

let check_float = Alcotest.(check (float 1e-9))

let random_problem ?(seed = 0) ?(dims = [ 3; 6; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* --- Bounds --- *)

let test_bounds_infeasible_detection () =
  let b = Bounds.create ~lower:[| 0.0; 1.0 |] ~upper:[| 1.0; 0.5 |] in
  Alcotest.(check bool) "infeasible" true (Bounds.is_infeasible b);
  let ok = Bounds.create ~lower:[| 0.0 |] ~upper:[| 0.0 |] in
  Alcotest.(check bool) "degenerate ok" false (Bounds.is_infeasible ok)

let test_bounds_apply_split () =
  let b = Bounds.create ~lower:[| -1.0 |] ~upper:[| 1.0 |] in
  let act = Bounds.apply_split b ~idx:0 ~phase:Split.Active in
  check_float "active clamps lower" 0.0 act.Bounds.lower.(0);
  let inact = Bounds.apply_split b ~idx:0 ~phase:Split.Inactive in
  check_float "inactive clamps upper" 0.0 inact.Bounds.upper.(0);
  Alcotest.(check bool) "original untouched" true (b.Bounds.lower.(0) = -1.0)

let test_bounds_split_can_be_infeasible () =
  let b = Bounds.create ~lower:[| 0.5 |] ~upper:[| 1.0 |] in
  let inact = Bounds.apply_split b ~idx:0 ~phase:Split.Inactive in
  Alcotest.(check bool) "contradiction detected" true (Bounds.is_infeasible inact)

let test_bounds_relu_states () =
  let b = Bounds.create ~lower:[| 0.0; -1.0; -2.0 |] ~upper:[| 1.0; 2.0; -0.5 |] in
  Alcotest.(check bool) "active" true (Bounds.relu_state_of b 0 = Bounds.Stable_active);
  Alcotest.(check bool) "unstable" true (Bounds.relu_state_of b 1 = Bounds.Unstable);
  Alcotest.(check bool) "inactive" true (Bounds.relu_state_of b 2 = Bounds.Stable_inactive);
  Alcotest.(check (list int)) "unstable list" [ 1 ] (Bounds.unstable_indices b);
  Alcotest.(check int) "count" 1 (Bounds.num_unstable b)

(* --- soundness of hidden bounds: sampled pre-activations inside --- *)

let bounds_contain_samples hidden_bounds problem samples_seed =
  let rng = Rng.create samples_seed in
  let ok = ref true in
  for _ = 1 to 200 do
    let x = Region.sample rng problem.Problem.region in
    let pre = Affine.pre_activations problem.Problem.affine x in
    Array.iteri
      (fun l (b : Bounds.t) ->
        Array.iteri
          (fun i lo ->
            let v = pre.(l).(i) in
            if v < lo -. 1e-6 || v > b.Bounds.upper.(i) +. 1e-6 then ok := false)
          b.Bounds.lower)
      hidden_bounds
  done;
  !ok

let test_interval_bounds_sound () =
  let problem = random_problem ~seed:1 () in
  match Interval.hidden_bounds problem [] with
  | None -> Alcotest.fail "unexpected infeasibility"
  | Some b ->
    Alcotest.(check bool) "IBP bounds contain samples" true
      (bounds_contain_samples b problem 101)

let test_deeppoly_bounds_sound () =
  let problem = random_problem ~seed:2 () in
  match Deeppoly.hidden_bounds problem [] with
  | None -> Alcotest.fail "unexpected infeasibility"
  | Some b ->
    Alcotest.(check bool) "DeepPoly bounds contain samples" true
      (bounds_contain_samples b problem 102)

let test_deeppoly_sound_under_splits () =
  (* Under split Γ the bounds must contain the pre-activations of every
     sampled input that satisfies Γ. *)
  let problem = random_problem ~seed:3 () in
  let affine = problem.Problem.affine in
  let base = Deeppoly.run problem [] in
  match Bounds.unstable_indices base.Outcome.pre_bounds.(0) with
  | [] -> Alcotest.fail "expected at least one unstable relu"
  | idx :: _ ->
    let relu = Affine.relu_index affine ~layer:0 ~idx in
    List.iter
      (fun phase ->
        let gamma = Split.extend [] ~relu ~phase in
        match Deeppoly.hidden_bounds problem gamma with
        | None -> Alcotest.fail "split of unstable relu cannot be infeasible"
        | Some hb ->
          let rng = Rng.create 55 in
          let ok = ref true in
          let checked = ref 0 in
          for _ = 1 to 500 do
            let x = Region.sample rng problem.Problem.region in
            if Split.satisfied_by affine gamma x then begin
              incr checked;
              let pre = Affine.pre_activations affine x in
              Array.iteri
                (fun l (b : Bounds.t) ->
                  Array.iteri
                    (fun i lo ->
                      let v = pre.(l).(i) in
                      if v < lo -. 1e-6 || v > b.Bounds.upper.(i) +. 1e-6 then ok := false)
                    b.Bounds.lower)
                hb
            end
          done;
          Alcotest.(check bool) "some samples satisfied the split" true (!checked > 0);
          Alcotest.(check bool) "split bounds sound" true !ok)
      [ Split.Active; Split.Inactive ]

(* --- phat lower-bounds the concrete margin --- *)

let phat_below_sampled_margins run problem =
  let outcome = run problem [] in
  let rng = Rng.create 77 in
  let ok = ref true in
  for _ = 1 to 300 do
    let x = Region.sample rng problem.Problem.region in
    if Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-6 then ok := false
  done;
  !ok

let test_interval_phat_sound () =
  let problem = random_problem ~seed:4 () in
  Alcotest.(check bool) "IBP phat sound" true (phat_below_sampled_margins Interval.run problem)

let test_deeppoly_phat_sound () =
  let problem = random_problem ~seed:5 () in
  Alcotest.(check bool) "DeepPoly phat sound" true
    (phat_below_sampled_margins (fun p g -> Deeppoly.run p g) problem)

let test_deeppoly_tighter_than_interval () =
  (* On every seed DeepPoly's certified bound must be >= IBP's. *)
  for seed = 10 to 19 do
    let problem = random_problem ~seed () in
    let dp = Deeppoly.run problem [] in
    let ibp = Interval.run problem [] in
    Alcotest.(check bool)
      (Printf.sprintf "deeppoly >= interval (seed %d)" seed)
      true
      (dp.Outcome.phat >= ibp.Outcome.phat -. 1e-9)
  done

let test_deeppoly_proves_easy_property () =
  (* Tiny epsilon around a confidently classified point should verify. *)
  let rng = Rng.create 42 in
  let net = Builder.mlp rng ~dims:[ 2; 8; 2 ] in
  let center = [| 0.3; -0.4 |] in
  let label = Network.predict net center in
  let region = Region.linf_ball ~center ~eps:1e-5 () in
  let property = Property.robustness ~num_classes:2 ~label in
  let problem = Problem.create ~network:net ~region ~property () in
  let outcome = Deeppoly.run problem [] in
  Alcotest.(check bool) "proved" true (Outcome.proved outcome);
  Alcotest.(check bool) "no candidate" true (outcome.Outcome.candidate = None)

let test_deeppoly_exact_on_linear_net () =
  (* Depth-1 network (no hidden ReLU): DeepPoly is exact, so the returned
     candidate achieves exactly phat. *)
  let w = Matrix.of_rows [| [| 1.0; -2.0 |] |] in
  let affine = Affine.of_weights [ (w, [| 0.25 |]) ] in
  let region = Region.create ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |] in
  let property = Property.single [| 1.0 |] 0.0 in
  let problem = Problem.of_affine ~affine ~region ~property () in
  let outcome = Deeppoly.run problem [] in
  check_float "phat = min margin = 0.25 - 3" (-2.75) outcome.Outcome.phat;
  match outcome.Outcome.candidate with
  | None -> Alcotest.fail "expected candidate"
  | Some x ->
    check_float "candidate achieves phat" outcome.Outcome.phat (Problem.concrete_margin problem x);
    Alcotest.(check bool) "candidate is real counterexample" true
      (Problem.is_counterexample problem x)

let test_deeppoly_candidate_in_region () =
  for seed = 30 to 34 do
    let problem = random_problem ~seed ~eps:0.5 () in
    let outcome = Deeppoly.run problem [] in
    match outcome.Outcome.candidate with
    | None -> ()
    | Some x ->
      Alcotest.(check bool)
        (Printf.sprintf "candidate inside region (seed %d)" seed)
        true
        (Region.contains problem.Problem.region x)
  done

(* --- splits tighten and can be infeasible --- *)

let test_split_never_loosens_phat_single_layer_zero_slope () =
  (* With a single hidden layer and the fixed zero lower slope, tightening
     a neuron's interval tightens its triangle relaxation pointwise, so
     each child's certified bound dominates the parent's.  (This is *not*
     a theorem for deeper nets or the adaptive slope, where the slope
     choice can flip.) *)
  for seed = 40 to 44 do
    let problem = random_problem ~seed ~dims:[ 3; 8; 2 ] () in
    let parent = Deeppoly.run ~slope:Deeppoly.Always_zero problem [] in
    if Array.length parent.Outcome.pre_bounds > 0 then begin
      match Bounds.unstable_indices parent.Outcome.pre_bounds.(0) with
      | [] -> ()
      | idx :: _ ->
        let relu = Affine.relu_index problem.Problem.affine ~layer:0 ~idx in
        List.iter
          (fun phase ->
            let child =
              Deeppoly.run ~slope:Deeppoly.Always_zero problem (Split.extend [] ~relu ~phase)
            in
            Alcotest.(check bool)
              (Printf.sprintf "child phat >= parent (seed %d)" seed)
              true
              (child.Outcome.phat >= parent.Outcome.phat -. 1e-9))
          [ Split.Active; Split.Inactive ]
    end
  done

let test_infeasible_split_is_vacuous () =
  (* Force a stable-active neuron to Inactive: infeasible, vacuously
     proved. *)
  let problem = random_problem ~seed:50 ~eps:0.01 () in
  let outcome = Deeppoly.run problem [] in
  let affine = problem.Problem.affine in
  let stable_active =
    let found = ref None in
    Array.iteri
      (fun l (b : Bounds.t) ->
        Array.iteri
          (fun i _ ->
            if !found = None && b.Bounds.lower.(i) > 0.01 then
              found := Some (Affine.relu_index affine ~layer:l ~idx:i))
          b.Bounds.lower)
      outcome.Outcome.pre_bounds;
    !found
  in
  match stable_active with
  | None -> Alcotest.fail "no stable-active neuron found; adjust seed"
  | Some relu ->
    let gamma = Split.extend [] ~relu ~phase:Split.Inactive in
    let child = Deeppoly.run problem gamma in
    Alcotest.(check bool) "infeasible" true child.Outcome.infeasible;
    Alcotest.(check bool) "vacuously proved" true (Outcome.proved child);
    check_float "phat = +inf" infinity child.Outcome.phat

let test_interval_split_infeasible_too () =
  let problem = random_problem ~seed:50 ~eps:0.01 () in
  let outcome = Interval.run problem [] in
  let affine = problem.Problem.affine in
  let found = ref None in
  Array.iteri
    (fun l (b : Bounds.t) ->
      Array.iteri
        (fun i _ ->
          if !found = None && b.Bounds.lower.(i) > 0.01 then
            found := Some (Affine.relu_index affine ~layer:l ~idx:i))
        b.Bounds.lower)
    outcome.Outcome.pre_bounds;
  match !found with
  | None -> Alcotest.fail "no stable-active neuron found"
  | Some relu ->
    let child = Interval.run problem (Split.extend [] ~relu ~phase:Split.Inactive) in
    Alcotest.(check bool) "IBP detects infeasibility" true child.Outcome.infeasible

(* --- slope policies --- *)

let test_all_slope_policies_sound () =
  (* The three lower-slope policies give different relaxations; slope
     choice affects downstream bounds non-monotonically, so no dominance
     holds between them in general — but every one of them must be
     sound. *)
  for seed = 60 to 62 do
    let problem = random_problem ~seed () in
    List.iter
      (fun slope ->
        Alcotest.(check bool)
          (Printf.sprintf "slope policy sound (seed %d)" seed)
          true
          (phat_below_sampled_margins (fun p g -> Deeppoly.run ~slope p g) problem))
      [ Deeppoly.Adaptive; Deeppoly.Always_zero; Deeppoly.Always_one ]
  done

let test_appver_registry () =
  Alcotest.(check int) "six verifiers" 6 (List.length Appver.all);
  Alcotest.(check bool) "find deeppoly" true (Appver.find "deeppoly" <> None);
  Alcotest.(check bool) "find missing" true (Appver.find "gurobi" = None);
  List.iter
    (fun v ->
      let problem = random_problem ~seed:70 () in
      let outcome = v.Appver.run problem [] in
      Alcotest.(check bool)
        (v.Appver.name ^ " returns finite or inf phat")
        true
        (not (Float.is_nan outcome.Outcome.phat)))
    Appver.all

(* --- convnet end-to-end bound soundness --- *)

let test_deeppoly_sound_on_convnet () =
  let rng = Rng.create 88 in
  let net =
    Builder.convnet rng ~in_channels:1 ~in_h:6 ~in_w:6
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 2; padding = 1 } ]
      ~dense:[ 8 ] ~num_classes:3
  in
  let center = Array.init 36 (fun _ -> Rng.uniform rng) in
  let label = Network.predict net center in
  let region = Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps:0.05 () in
  let property = Property.robustness ~num_classes:3 ~label in
  let problem = Problem.create ~network:net ~region ~property () in
  let outcome = Deeppoly.run problem [] in
  let rng2 = Rng.create 89 in
  let ok = ref true in
  for _ = 1 to 100 do
    let x = Region.sample rng2 problem.Problem.region in
    if Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-6 then ok := false
  done;
  Alcotest.(check bool) "convnet phat sound" true !ok

(* --- qcheck: random tiny nets, sampled soundness --- *)

let prop_deeppoly_sound_random_nets =
  QCheck.Test.make ~name:"deeppoly phat sound on random nets" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 2 5))
    (fun (seed, width) ->
      let problem = random_problem ~seed ~dims:[ 2; width; 2 ] ~eps:0.4 () in
      let outcome = Deeppoly.run problem [] in
      let rng = Rng.create (seed + 10_000) in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Region.sample rng problem.Problem.region in
        if Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-6 then ok := false
      done;
      !ok)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "prop.bounds",
      [ Alcotest.test_case "infeasible detection" `Quick test_bounds_infeasible_detection;
        Alcotest.test_case "apply split" `Quick test_bounds_apply_split;
        Alcotest.test_case "split infeasible" `Quick test_bounds_split_can_be_infeasible;
        Alcotest.test_case "relu states" `Quick test_bounds_relu_states
      ] );
    ( "prop.soundness",
      [ Alcotest.test_case "interval hidden bounds" `Quick test_interval_bounds_sound;
        Alcotest.test_case "deeppoly hidden bounds" `Quick test_deeppoly_bounds_sound;
        Alcotest.test_case "deeppoly under splits" `Quick test_deeppoly_sound_under_splits;
        Alcotest.test_case "interval phat" `Quick test_interval_phat_sound;
        Alcotest.test_case "deeppoly phat" `Quick test_deeppoly_phat_sound;
        Alcotest.test_case "convnet phat" `Quick test_deeppoly_sound_on_convnet;
        qtest prop_deeppoly_sound_random_nets
      ] );
    ( "prop.precision",
      [ Alcotest.test_case "deeppoly tighter than IBP" `Quick test_deeppoly_tighter_than_interval;
        Alcotest.test_case "proves easy property" `Quick test_deeppoly_proves_easy_property;
        Alcotest.test_case "exact on linear net" `Quick test_deeppoly_exact_on_linear_net;
        Alcotest.test_case "candidate in region" `Quick test_deeppoly_candidate_in_region;
        Alcotest.test_case "slope policies sound" `Quick test_all_slope_policies_sound
      ] );
    ( "prop.splits",
      [ Alcotest.test_case "splits never loosen" `Quick test_split_never_loosens_phat_single_layer_zero_slope;
        Alcotest.test_case "infeasible split vacuous" `Quick test_infeasible_split_is_vacuous;
        Alcotest.test_case "interval infeasibility" `Quick test_interval_split_infeasible_too
      ] );
    ( "prop.appver", [ Alcotest.test_case "registry" `Quick test_appver_registry ] )
  ]

(* --- Zonotope (DeepZ) --- *)

module Zonotope = Abonn_prop.Zonotope

let test_zonotope_bounds_sound () =
  let problem = random_problem ~seed:2 () in
  match Zonotope.hidden_bounds problem [] with
  | None -> Alcotest.fail "unexpected infeasibility"
  | Some b ->
    Alcotest.(check bool) "zonotope bounds contain samples" true
      (bounds_contain_samples b problem 103)

let test_zonotope_phat_sound () =
  for seed = 5 to 8 do
    let problem = random_problem ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "zonotope phat sound (seed %d)" seed)
      true
      (phat_below_sampled_margins Zonotope.run problem)
  done

let test_zonotope_tighter_than_interval () =
  (* Zonotopes refine intervals: affine forms keep correlations, so the
     certified bound can only improve on IBP. *)
  for seed = 10 to 16 do
    let problem = random_problem ~seed () in
    let z = Zonotope.run problem [] in
    let ibp = Interval.run problem [] in
    Alcotest.(check bool)
      (Printf.sprintf "zonotope >= interval (seed %d)" seed)
      true
      (z.Outcome.phat >= ibp.Outcome.phat -. 1e-9)
  done

let test_zonotope_exact_on_linear_net () =
  (* No ReLU stage: the zonotope is exact, like every other domain. *)
  let w = Matrix.of_rows [| [| 1.0; -2.0 |] |] in
  let affine = Affine.of_weights [ (w, [| 0.25 |]) ] in
  let region = Region.create ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |] in
  let property = Property.single [| 1.0 |] 0.0 in
  let problem = Problem.of_affine ~affine ~region ~property () in
  let outcome = Zonotope.run problem [] in
  check_float "phat exact" (-2.75) outcome.Outcome.phat;
  match outcome.Outcome.candidate with
  | None -> Alcotest.fail "expected candidate"
  | Some x ->
    check_float "candidate achieves phat" outcome.Outcome.phat
      (Problem.concrete_margin problem x)

let test_zonotope_infeasible_split_vacuous () =
  let problem = random_problem ~seed:50 ~eps:0.01 () in
  let outcome = Zonotope.run problem [] in
  let affine = problem.Problem.affine in
  let found = ref None in
  Array.iteri
    (fun l (b : Bounds.t) ->
      Array.iteri
        (fun i _ ->
          if !found = None && b.Bounds.lower.(i) > 0.01 then
            found := Some (Affine.relu_index affine ~layer:l ~idx:i))
        b.Bounds.lower)
    outcome.Outcome.pre_bounds;
  match !found with
  | None -> Alcotest.fail "no stable-active neuron"
  | Some relu ->
    let child = Zonotope.run problem (Split.extend [] ~relu ~phase:Split.Inactive) in
    Alcotest.(check bool) "vacuous" true child.Outcome.infeasible

let test_zonotope_sound_under_splits () =
  let problem = random_problem ~seed:3 () in
  let affine = problem.Problem.affine in
  let base = Zonotope.run problem [] in
  match Bounds.unstable_indices base.Outcome.pre_bounds.(0) with
  | [] -> Alcotest.fail "expected unstable relu"
  | idx :: _ ->
    let relu = Affine.relu_index affine ~layer:0 ~idx in
    List.iter
      (fun phase ->
        let gamma = Split.extend [] ~relu ~phase in
        let outcome = Zonotope.run problem gamma in
        if not outcome.Outcome.infeasible then begin
          let rng = Rng.create 66 in
          let ok = ref true in
          for _ = 1 to 300 do
            let x = Region.sample rng problem.Problem.region in
            if Split.satisfied_by affine gamma x
               && Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-6
            then ok := false
          done;
          Alcotest.(check bool) "split-restricted soundness" true !ok
        end)
      [ Split.Active; Split.Inactive ]

let zonotope_tests =
  ( "prop.zonotope",
    [ Alcotest.test_case "bounds sound" `Quick test_zonotope_bounds_sound;
      Alcotest.test_case "phat sound" `Quick test_zonotope_phat_sound;
      Alcotest.test_case "tighter than interval" `Quick test_zonotope_tighter_than_interval;
      Alcotest.test_case "exact on linear" `Quick test_zonotope_exact_on_linear_net;
      Alcotest.test_case "infeasible split" `Quick test_zonotope_infeasible_split_vacuous;
      Alcotest.test_case "sound under splits" `Quick test_zonotope_sound_under_splits
    ] )

let suite = suite @ [ zonotope_tests ]

(* --- Forward symbolic intervals (ReluVal/Neurify) --- *)

module Symbolic = Abonn_prop.Symbolic

let test_symbolic_bounds_sound () =
  let problem = random_problem ~seed:2 () in
  match Symbolic.hidden_bounds problem [] with
  | None -> Alcotest.fail "unexpected infeasibility"
  | Some b ->
    Alcotest.(check bool) "symbolic bounds contain samples" true
      (bounds_contain_samples b problem 104)

let test_symbolic_phat_sound () =
  for seed = 5 to 8 do
    let problem = random_problem ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "symbolic phat sound (seed %d)" seed)
      true
      (phat_below_sampled_margins Symbolic.run problem)
  done

let test_symbolic_tighter_than_interval () =
  for seed = 10 to 16 do
    let problem = random_problem ~seed () in
    let s = Symbolic.run problem [] in
    let ibp = Interval.run problem [] in
    Alcotest.(check bool)
      (Printf.sprintf "symbolic >= interval (seed %d)" seed)
      true
      (s.Outcome.phat >= ibp.Outcome.phat -. 1e-9)
  done

let test_symbolic_exact_on_linear_net () =
  let w = Matrix.of_rows [| [| 1.0; -2.0 |] |] in
  let affine = Affine.of_weights [ (w, [| 0.25 |]) ] in
  let region = Region.create ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |] in
  let property = Property.single [| 1.0 |] 0.0 in
  let problem = Problem.of_affine ~affine ~region ~property () in
  let outcome = Symbolic.run problem [] in
  check_float "phat exact" (-2.75) outcome.Outcome.phat;
  match outcome.Outcome.candidate with
  | None -> Alcotest.fail "expected candidate"
  | Some x ->
    check_float "candidate achieves phat" outcome.Outcome.phat
      (Problem.concrete_margin problem x)

let test_symbolic_sound_under_splits () =
  let problem = random_problem ~seed:3 () in
  let affine = problem.Problem.affine in
  let base = Symbolic.run problem [] in
  match Bounds.unstable_indices base.Outcome.pre_bounds.(0) with
  | [] -> Alcotest.fail "expected unstable relu"
  | idx :: _ ->
    let relu = Affine.relu_index affine ~layer:0 ~idx in
    List.iter
      (fun phase ->
        let gamma = Split.extend [] ~relu ~phase in
        let outcome = Symbolic.run problem gamma in
        if not outcome.Outcome.infeasible then begin
          let rng = Rng.create 67 in
          let ok = ref true in
          for _ = 1 to 300 do
            let x = Region.sample rng problem.Problem.region in
            if Split.satisfied_by affine gamma x
               && Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-6
            then ok := false
          done;
          Alcotest.(check bool) "split-restricted soundness" true !ok
        end)
      [ Split.Active; Split.Inactive ]

let symbolic_tests =
  ( "prop.symbolic",
    [ Alcotest.test_case "bounds sound" `Quick test_symbolic_bounds_sound;
      Alcotest.test_case "phat sound" `Quick test_symbolic_phat_sound;
      Alcotest.test_case "tighter than interval" `Quick test_symbolic_tighter_than_interval;
      Alcotest.test_case "exact on linear" `Quick test_symbolic_exact_on_linear_net;
      Alcotest.test_case "sound under splits" `Quick test_symbolic_sound_under_splits
    ] )

let suite = suite @ [ symbolic_tests ]
