test/test_main.ml: Alcotest Test_abonn Test_attack Test_bab Test_data Test_harness Test_lp Test_nn Test_prop Test_properties Test_spec Test_tensor Test_util
