test/test_harness.ml: Abonn_bab Abonn_data Abonn_harness Abonn_spec Alcotest Array Float Lazy List String
