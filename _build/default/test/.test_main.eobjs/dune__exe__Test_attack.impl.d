test/test_attack.ml: Abonn_attack Abonn_bab Abonn_crown Abonn_nn Abonn_spec Abonn_util Alcotest Array List Printf
