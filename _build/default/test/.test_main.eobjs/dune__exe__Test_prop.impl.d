test/test_prop.ml: Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Alcotest Array Float List Printf QCheck QCheck_alcotest
