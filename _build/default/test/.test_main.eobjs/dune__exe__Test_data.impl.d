test/test_data.ml: Abonn_data Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Alcotest Array Filename Fun Lazy List Printf Sys
