test/test_abonn.ml: Abonn_bab Abonn_core Abonn_nn Abonn_prop Abonn_spec Abonn_util Alcotest Array List Printf Stdlib
