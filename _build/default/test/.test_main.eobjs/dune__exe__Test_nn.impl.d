test/test_nn.ml: Abonn_nn Abonn_tensor Abonn_util Alcotest Array Filename Float Fun Printf QCheck QCheck_alcotest Sys
