test/test_properties.ml: Abonn_lp Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Array Float List QCheck QCheck_alcotest
