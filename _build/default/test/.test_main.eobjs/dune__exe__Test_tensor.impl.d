test/test_tensor.ml: Abonn_tensor Abonn_util Alcotest Array Float QCheck QCheck_alcotest
