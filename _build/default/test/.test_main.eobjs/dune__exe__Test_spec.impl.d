test/test_spec.ml: Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Alcotest Array Filename Fun QCheck QCheck_alcotest Sys
