test/test_bab.ml: Abonn_bab Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Alcotest Array Format List Printf
