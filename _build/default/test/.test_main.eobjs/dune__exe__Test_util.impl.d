test/test_util.ml: Abonn_util Alcotest Array Float List QCheck QCheck_alcotest String
