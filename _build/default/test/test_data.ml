(* Tests for Abonn_data: dataset determinism and shape, prototype
   separation, model zoo training, instance generation invariants. *)

module Rng = Abonn_util.Rng
module Synth = Abonn_data.Synth
module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Trainer = Abonn_nn.Trainer
module Network = Abonn_nn.Network
module Vector = Abonn_tensor.Vector
module Outcome = Abonn_prop.Outcome
module Problem = Abonn_spec.Problem
module Region = Abonn_spec.Region

(* --- Synth --- *)

let test_synth_shapes () =
  let d = Synth.mnist_like ~train_size:50 ~test_size:10 () in
  Alcotest.(check int) "input dim" 100 (Synth.input_dim d);
  Alcotest.(check int) "train size" 50 (Array.length d.Synth.train);
  Alcotest.(check int) "test size" 10 (Array.length d.Synth.test);
  let c = Synth.cifar_like ~train_size:20 ~test_size:5 () in
  Alcotest.(check int) "cifar input dim" 192 (Synth.input_dim c)

let test_synth_deterministic () =
  let a = Synth.mnist_like ~train_size:20 ~test_size:5 () in
  let b = Synth.mnist_like ~train_size:20 ~test_size:5 () in
  Alcotest.(check bool) "same data" true
    (Array.for_all2
       (fun (x : Trainer.sample) (y : Trainer.sample) ->
         x.Trainer.label = y.Trainer.label && x.Trainer.features = y.Trainer.features)
       a.Synth.train b.Synth.train)

let test_synth_pixels_in_range () =
  let d = Synth.cifar_like ~train_size:30 ~test_size:5 () in
  Array.iter
    (fun (s : Trainer.sample) ->
      Array.iter
        (fun p -> Alcotest.(check bool) "pixel in [0,1]" true (p >= 0.0 && p <= 1.0))
        s.Trainer.features)
    d.Synth.train

let test_synth_labels_balanced () =
  let d = Synth.mnist_like ~train_size:100 ~test_size:10 () in
  let counts = Array.make 10 0 in
  Array.iter (fun (s : Trainer.sample) -> counts.(s.Trainer.label) <- counts.(s.Trainer.label) + 1)
    d.Synth.train;
  Array.iter (fun c -> Alcotest.(check int) "balanced" 10 c) counts

let test_synth_prototypes_distinct () =
  let d = Synth.mnist_like ~train_size:10 ~test_size:5 () in
  let p0 = Synth.prototype d 0 and p5 = Synth.prototype d 5 in
  Alcotest.(check bool) "prototypes differ" true
    (Vector.norm_inf (Vector.sub p0 p5) > 0.1)

let test_synth_rejects_bad_class () =
  let d = Synth.mnist_like ~train_size:10 ~test_size:5 () in
  Alcotest.(check bool) "raises" true
    (try ignore (Synth.prototype d 10); false with Invalid_argument _ -> true)

(* --- Models --- *)

let test_models_registry () =
  Alcotest.(check int) "five families" 5 (List.length Models.all);
  Alcotest.(check bool) "find works" true (Models.find "cifar_deep" <> None);
  Alcotest.(check bool) "unknown none" true (Models.find "lenet" = None)

let test_models_architectures_relate () =
  (* Structural relationships of Table I must hold on the scaled zoo. *)
  let layers spec =
    let rng = Rng.create 0 in
    List.length (Abonn_nn.Network.layers (spec.Models.build rng))
  in
  Alcotest.(check bool) "L4 deeper than L2" true (layers Models.mnist_l4 > layers Models.mnist_l2);
  Alcotest.(check bool) "deep deeper than base" true
    (layers Models.cifar_deep > layers Models.cifar_base);
  let neurons spec =
    let rng = Rng.create 0 in
    Abonn_nn.Network.num_neurons (spec.Models.build rng)
  in
  Alcotest.(check bool) "wide wider than base" true
    (neurons Models.cifar_wide > neurons Models.cifar_base)

let small_trained =
  lazy (Models.train ~epochs:6 Models.mnist_l2)

let test_models_training_learns () =
  let t = Lazy.force small_trained in
  Alcotest.(check bool)
    (Printf.sprintf "test accuracy %.2f >= 0.8" t.Models.test_accuracy)
    true
    (t.Models.test_accuracy >= 0.8)

let test_models_training_deterministic () =
  let a = Models.train ~epochs:2 Models.mnist_l2 in
  let b = Models.train ~epochs:2 Models.mnist_l2 in
  let x = Array.make 100 0.3 in
  Alcotest.(check bool) "same network" true
    (Vector.approx_equal
       (Network.forward a.Models.network x)
       (Network.forward b.Models.network x))

let test_models_cache_roundtrip () =
  let dir = Filename.temp_file "abonn_models" "" in
  Sys.remove dir;
  let t1 = Models.train_cached ~dir ~epochs:2 Models.mnist_l2 in
  let t2 = Models.train_cached ~dir ~epochs:2 Models.mnist_l2 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove (Filename.concat dir "mnist_l2.net");
      Sys.rmdir dir)
    (fun () ->
      let x = Array.make 100 0.7 in
      Alcotest.(check bool) "cached network identical" true
        (Vector.approx_equal
           (Network.forward t1.Models.network x)
           (Network.forward t2.Models.network x)))

(* --- Instances --- *)

let test_instances_generation_invariants () =
  let t = Lazy.force small_trained in
  let instances = Instances.generate ~count:6 t in
  Alcotest.(check bool) "non-empty" true (List.length instances > 0);
  List.iter
    (fun (i : Instances.t) ->
      Alcotest.(check string) "model name" "mnist_l2" i.Instances.model;
      Alcotest.(check bool) "positive eps" true (i.Instances.eps > 0.0);
      (* every instance must be undecided at the root by construction *)
      let outcome = Abonn_prop.Deeppoly.run i.Instances.problem [] in
      Alcotest.(check bool) "root undecided" true (not (Outcome.proved outcome));
      match outcome.Outcome.candidate with
      | Some x ->
        Alcotest.(check bool) "candidate spurious" true
          (not (Problem.is_counterexample i.Instances.problem x))
      | None -> ())
    instances

let test_instances_unique_ids () =
  let t = Lazy.force small_trained in
  let instances = Instances.generate ~count:6 t in
  let ids = List.map (fun (i : Instances.t) -> i.Instances.id) instances in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_certified_radius_is_certified () =
  let t = Lazy.force small_trained in
  let affine = Abonn_nn.Affine.of_network t.Models.network in
  let sample = t.Models.dataset.Synth.test.(0) in
  let center = sample.Trainer.features in
  let label = sample.Trainer.label in
  let r = Instances.certified_radius ~affine ~center ~label ~num_classes:10 in
  Alcotest.(check bool) "radius positive" true (r > 0.0);
  (* the radius itself must certify *)
  let region = Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps:r () in
  let property = Abonn_spec.Property.robustness ~num_classes:10 ~label in
  let problem = Problem.of_affine ~affine ~region ~property () in
  Alcotest.(check bool) "certifies at r" true
    (Outcome.proved (Abonn_prop.Deeppoly.run problem []))

let test_instances_regions_clipped () =
  let t = Lazy.force small_trained in
  let instances = Instances.generate ~count:4 t in
  List.iter
    (fun (i : Instances.t) ->
      let region = i.Instances.problem.Problem.region in
      Array.iter
        (fun lo -> Alcotest.(check bool) "lower >= 0" true (lo >= 0.0))
        region.Region.lower;
      Array.iter
        (fun hi -> Alcotest.(check bool) "upper <= 1" true (hi <= 1.0))
        region.Region.upper)
    instances

let suite =
  [ ( "data.synth",
      [ Alcotest.test_case "shapes" `Quick test_synth_shapes;
        Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
        Alcotest.test_case "pixels in range" `Quick test_synth_pixels_in_range;
        Alcotest.test_case "labels balanced" `Quick test_synth_labels_balanced;
        Alcotest.test_case "prototypes distinct" `Quick test_synth_prototypes_distinct;
        Alcotest.test_case "rejects bad class" `Quick test_synth_rejects_bad_class
      ] );
    ( "data.models",
      [ Alcotest.test_case "registry" `Quick test_models_registry;
        Alcotest.test_case "architectures relate" `Quick test_models_architectures_relate;
        Alcotest.test_case "training learns" `Quick test_models_training_learns;
        Alcotest.test_case "training deterministic" `Quick test_models_training_deterministic;
        Alcotest.test_case "cache roundtrip" `Quick test_models_cache_roundtrip
      ] );
    ( "data.instances",
      [ Alcotest.test_case "generation invariants" `Quick test_instances_generation_invariants;
        Alcotest.test_case "unique ids" `Quick test_instances_unique_ids;
        Alcotest.test_case "certified radius" `Quick test_certified_radius_is_certified;
        Alcotest.test_case "regions clipped" `Quick test_instances_regions_clipped
      ] )
  ]
