(** ABONN hyper-parameters (Alg. 1 inputs).

    The paper's default tool configuration is [λ = 0.5], [c = 0.2]
    (§V-A); RQ2 sweeps both.  [selection] exists for the ablation study:
    [Ucb1] is Alg. 1 Line 13 (with [c = 0] degenerating to pure greedy
    exploitation), [Uniform_random] replaces the selection step by a coin
    flip to isolate the value of reward guidance. *)

type selection =
  | Ucb1
  | Uniform_random of int  (** seed *)

type t = {
  lambda : float;        (** weight of node depth in Def. 1 *)
  c : float;             (** UCB1 exploration constant *)
  appver : Abonn_prop.Appver.t;
  heuristic : Abonn_bab.Branching.t;
  selection : selection;
}

val default : t
(** λ=0.5, c=0.2, DeepPoly AppVer, DeepSplit heuristic, UCB1. *)

val make :
  ?lambda:float ->
  ?c:float ->
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Abonn_bab.Branching.t ->
  ?selection:selection ->
  unit ->
  t
(** [default] with overrides.  Raises [Invalid_argument] for λ outside
    [\[0,1\]] or negative [c]. *)
