type selection = Ucb1 | Uniform_random of int

type t = {
  lambda : float;
  c : float;
  appver : Abonn_prop.Appver.t;
  heuristic : Abonn_bab.Branching.t;
  selection : selection;
}

let default =
  { lambda = 0.5;
    c = 0.2;
    appver = Abonn_prop.Appver.deeppoly;
    heuristic = Abonn_bab.Branching.default;
    selection = Ucb1 }

let make ?(lambda = default.lambda) ?(c = default.c) ?(appver = default.appver)
    ?(heuristic = default.heuristic) ?(selection = default.selection) () =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Config.make: lambda outside [0,1]";
  if c < 0.0 then invalid_arg "Config.make: negative exploration constant";
  { lambda; c; appver; heuristic; selection }
