lib/core/config.mli: Abonn_bab Abonn_prop
