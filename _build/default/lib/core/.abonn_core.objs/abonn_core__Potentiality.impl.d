lib/core/potentiality.ml:
