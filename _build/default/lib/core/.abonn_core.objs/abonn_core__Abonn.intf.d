lib/core/abonn.mli: Abonn_bab Abonn_spec Abonn_util Config
