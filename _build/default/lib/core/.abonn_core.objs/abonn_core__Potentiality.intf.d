lib/core/potentiality.mli:
