lib/core/abonn.ml: Abonn_bab Abonn_prop Abonn_spec Abonn_util Config Float Potentiality Stdlib Unix
