lib/core/config.ml: Abonn_bab Abonn_prop
