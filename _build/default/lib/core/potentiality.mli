(** Counterexample potentiality — Def. 1 of the paper.

    The "importance" [[Γ]] of a BaB node, characterising how likely a
    real counterexample hides in its sub-problem:

    - [-∞] when the sub-problem is proved ([p̂ > 0], including vacuously
      proved infeasible splits);
    - [+∞] when the AppVer's candidate counterexample validates on the
      concrete network;
    - [λ·depth(Γ)/K + (1−λ)·p̂/p̂_min] otherwise — deeper nodes carry
      less over-approximation, and more-negative [p̂] signals stronger
      (apparent) violation.

    [p̂_min] is the normaliser making the second term dimensionless; the
    paper does not pin its definition, and we use the root problem's [p̂]
    (the most negative bound the search starts from), kept constant so
    rewards remain comparable across the whole run. *)

val value :
  lambda:float ->
  num_relus:int ->
  phat_min:float ->
  depth:int ->
  phat:float ->
  valid_cex:bool ->
  float
(** [value ~lambda ~num_relus ~phat_min ~depth ~phat ~valid_cex].
    Raises [Invalid_argument] if [lambda] is outside [\[0, 1\]] or
    [num_relus <= 0]. *)
