let value ~lambda ~num_relus ~phat_min ~depth ~phat ~valid_cex =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Potentiality.value: lambda outside [0,1]";
  if num_relus <= 0 then invalid_arg "Potentiality.value: num_relus must be positive";
  if phat > 0.0 then neg_infinity
  else if phat < 0.0 && valid_cex then infinity
  else begin
    (* Normalise p̂ by the reference minimum; both are <= 0, so the ratio
       is non-negative and ~1 at the most violated node seen.  A
       degenerate p̂_min (>= 0) can only arise on already-proved roots,
       where this branch is unreachable; guard anyway. *)
    let ratio = if phat_min < 0.0 then phat /. phat_min else 0.0 in
    (lambda *. float_of_int depth /. float_of_int num_relus) +. ((1.0 -. lambda) *. ratio)
  end
