(** Benchmark model zoo — Table I of the paper, scaled for pure OCaml.

    Five families mirroring the paper's architectures: two fully
    connected stacks on the MNIST-like data and three convolutional
    networks (base / wide / deep) on the CIFAR-like data.  Absolute
    widths are scaled down (DESIGN.md §4) but the architectural
    relationships of Table I are preserved: L4 is twice as deep as L2,
    WIDE widens BASE's channels, DEEP doubles BASE's conv depth.

    Training is deterministic from the seed; trained weights can be
    cached on disk through [train_cached]. *)

type dataset_kind = Mnist_like | Cifar_like

type spec = {
  name : string;
  architecture : string;   (** human-readable, for Table I *)
  dataset : dataset_kind;
  build : Abonn_util.Rng.t -> Abonn_nn.Network.t;
}

val all : spec list
(** [mnist_l2; mnist_l4; cifar_base; cifar_wide; cifar_deep]. *)

val find : string -> spec option

val mnist_l2 : spec
val mnist_l4 : spec
val cifar_base : spec
val cifar_wide : spec
val cifar_deep : spec

type trained = {
  spec : spec;
  network : Abonn_nn.Network.t;
  dataset : Synth.t;
  train_accuracy : float;
  test_accuracy : float;
}

val dataset_for : ?seed:int -> dataset_kind -> Synth.t

val train : ?seed:int -> ?epochs:int -> spec -> trained
(** Build, train and evaluate (defaults: seed 7, 15 epochs). *)

val train_cached : dir:string -> ?seed:int -> ?epochs:int -> spec -> trained
(** Like [train] but loads the network from [dir/<name>.net] when
    present and writes it there after training otherwise. *)
