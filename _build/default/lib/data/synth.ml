module Rng = Abonn_util.Rng
module Trainer = Abonn_nn.Trainer

type t = {
  name : string;
  channels : int;
  height : int;
  width : int;
  num_classes : int;
  train : Trainer.sample array;
  test : Trainer.sample array;
}

let input_dim d = d.channels * d.height * d.width

let clip01 v = Float.max 0.0 (Float.min 1.0 v)

(* Class prototypes mix a class-positioned Gaussian blob with a
   class-frequency stripe pattern, giving moderately separated classes
   whose decision boundaries still cut through the pixel box. *)
let prototype_pixel ~num_classes ~height ~width ~cls ~ch ~y ~x =
  let fy = float_of_int y /. float_of_int (height - 1) in
  let fx = float_of_int x /. float_of_int (width - 1) in
  let angle = 2.0 *. Float.pi *. float_of_int cls /. float_of_int num_classes in
  let cy = 0.5 +. (0.3 *. sin angle) in
  let cx = 0.5 +. (0.3 *. cos angle) in
  let d2 = ((fy -. cy) ** 2.0) +. ((fx -. cx) ** 2.0) in
  let blob = exp (-.d2 /. 0.05) in
  let stripes =
    0.5 +. (0.5 *. sin ((float_of_int (cls + 2) *. 3.0 *. (fx +. fy)) +. float_of_int ch))
  in
  clip01 ((0.6 *. blob) +. (0.3 *. stripes) +. 0.05)

let make_prototype ~num_classes ~channels ~height ~width cls =
  Array.init (channels * height * width) (fun k ->
      let ch = k / (height * width) in
      let rem = k mod (height * width) in
      let y = rem / width and x = rem mod width in
      prototype_pixel ~num_classes ~height ~width ~cls ~ch ~y ~x)

let noise_sigma = 0.18

let make_samples rng protos n =
  let num_classes = Array.length protos in
  Array.init n (fun i ->
      let label = i mod num_classes in
      let proto = protos.(label) in
      let features =
        Array.map (fun p -> clip01 (p +. (noise_sigma *. Rng.gaussian rng))) proto
      in
      { Trainer.features; label })

let make ~name ~channels ~height ~width ~num_classes ~train_size ~test_size ~seed =
  let protos =
    Array.init num_classes (make_prototype ~num_classes ~channels ~height ~width)
  in
  let rng = Rng.create seed in
  let train = make_samples rng protos train_size in
  let test = make_samples rng protos test_size in
  { name; channels; height; width; num_classes; train; test }

let mnist_like ?(train_size = 600) ?(test_size = 120) ?(seed = 2025) () =
  make ~name:"mnist-like" ~channels:1 ~height:10 ~width:10 ~num_classes:10 ~train_size
    ~test_size ~seed

let cifar_like ?(train_size = 600) ?(test_size = 120) ?(seed = 2026) () =
  make ~name:"cifar-like" ~channels:3 ~height:8 ~width:8 ~num_classes:10 ~train_size
    ~test_size ~seed

let prototype d cls =
  if cls < 0 || cls >= d.num_classes then invalid_arg "Synth.prototype: bad class";
  make_prototype ~num_classes:d.num_classes ~channels:d.channels ~height:d.height
    ~width:d.width cls
