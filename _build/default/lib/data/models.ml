module Rng = Abonn_util.Rng
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Trainer = Abonn_nn.Trainer
module Serialize = Abonn_nn.Serialize

type dataset_kind = Mnist_like | Cifar_like

type spec = {
  name : string;
  architecture : string;
  dataset : dataset_kind;
  build : Rng.t -> Network.t;
}

let mnist_input = 100 (* 1 × 10 × 10 *)

let mnist_l2 =
  { name = "mnist_l2";
    architecture = "2 x 32 linear";
    dataset = Mnist_like;
    build = (fun rng -> Builder.mlp rng ~dims:[ mnist_input; 32; 32; 10 ]) }

let mnist_l4 =
  { name = "mnist_l4";
    architecture = "4 x 24 linear";
    dataset = Mnist_like;
    build = (fun rng -> Builder.mlp rng ~dims:[ mnist_input; 24; 24; 24; 24; 10 ]) }

let conv c k s p = { Builder.out_channels = c; kernel = k; stride = s; padding = p }

let cifar_base =
  { name = "cifar_base";
    architecture = "2 conv, 2 linear";
    dataset = Cifar_like;
    build =
      (fun rng ->
        Builder.convnet rng ~in_channels:3 ~in_h:8 ~in_w:8
          ~convs:[ conv 4 3 2 1; conv 8 3 2 1 ]
          ~dense:[ 32 ] ~num_classes:10) }

let cifar_wide =
  { name = "cifar_wide";
    architecture = "2 conv (wide), 2 linear";
    dataset = Cifar_like;
    build =
      (fun rng ->
        Builder.convnet rng ~in_channels:3 ~in_h:8 ~in_w:8
          ~convs:[ conv 6 3 2 1; conv 12 3 2 1 ]
          ~dense:[ 48 ] ~num_classes:10) }

let cifar_deep =
  { name = "cifar_deep";
    architecture = "4 conv, 2 linear";
    dataset = Cifar_like;
    build =
      (fun rng ->
        Builder.convnet rng ~in_channels:3 ~in_h:8 ~in_w:8
          ~convs:[ conv 4 3 1 1; conv 4 3 2 1; conv 8 3 1 1; conv 8 3 2 1 ]
          ~dense:[ 32 ] ~num_classes:10) }

let all = [ mnist_l2; mnist_l4; cifar_base; cifar_wide; cifar_deep ]

let find name = List.find_opt (fun s -> s.name = name) all

type trained = {
  spec : spec;
  network : Network.t;
  dataset : Synth.t;
  train_accuracy : float;
  test_accuracy : float;
}

let dataset_for ?seed = function
  | Mnist_like -> Synth.mnist_like ?seed ()
  | Cifar_like -> Synth.cifar_like ?seed ()

let evaluate spec network dataset =
  { spec;
    network;
    dataset;
    train_accuracy = Trainer.accuracy network dataset.Synth.train;
    test_accuracy = Trainer.accuracy network dataset.Synth.test }

let train ?(seed = 7) ?(epochs = 15) (spec : spec) =
  let dataset = dataset_for spec.dataset in
  let rng = Rng.create seed in
  let net = spec.build rng in
  let config = { Trainer.default_config with epochs } in
  let net = Trainer.train ~config rng net dataset.Synth.train in
  evaluate spec net dataset

let train_cached ~dir ?(seed = 7) ?(epochs = 15) (spec : spec) =
  let path = Filename.concat dir (spec.name ^ ".net") in
  if Sys.file_exists path then begin
    let network = Serialize.load path in
    evaluate spec network (dataset_for spec.dataset)
  end
  else begin
    let t = train ~seed ~epochs spec in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Serialize.save t.network path;
    t
  end
