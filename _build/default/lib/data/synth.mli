(** Synthetic image datasets — the offline substitute for MNIST and
    CIFAR-10 (DESIGN.md §4).

    Each class has a deterministic prototype image built from
    class-dependent blobs and stripe patterns; samples add Gaussian pixel
    noise and are clipped to [\[0, 1\]].  The generative seeds are fixed,
    so every run of the repository sees byte-identical data.

    Resolutions are scaled down from the paper's 28×28/32×32 so that
    pure-OCaml verification keeps the BaB trees in the paper's regime
    (Fig. 3) at CI-friendly wall-clock. *)

type t = {
  name : string;
  channels : int;
  height : int;
  width : int;
  num_classes : int;
  train : Abonn_nn.Trainer.sample array;
  test : Abonn_nn.Trainer.sample array;
}

val input_dim : t -> int

val mnist_like : ?train_size:int -> ?test_size:int -> ?seed:int -> unit -> t
(** 1×10×10 grayscale, 10 classes (defaults: 600 train / 120 test,
    seed 2025). *)

val cifar_like : ?train_size:int -> ?test_size:int -> ?seed:int -> unit -> t
(** 3×8×8 colour, 10 classes (defaults: 600 train / 120 test,
    seed 2026). *)

val prototype : t -> int -> float array
(** The noiseless class prototype (for documentation and tests). *)
