lib/data/instances.ml: Abonn_attack Abonn_nn Abonn_prop Abonn_spec Abonn_util Array List Models Printf Synth
