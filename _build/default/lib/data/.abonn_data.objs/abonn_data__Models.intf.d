lib/data/models.mli: Abonn_nn Abonn_util Synth
