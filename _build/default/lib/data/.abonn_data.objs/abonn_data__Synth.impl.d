lib/data/synth.ml: Abonn_nn Abonn_util Array Float
