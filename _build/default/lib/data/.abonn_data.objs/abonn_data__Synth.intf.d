lib/data/synth.mli: Abonn_nn
