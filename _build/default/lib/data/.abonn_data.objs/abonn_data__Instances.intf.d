lib/data/instances.mli: Abonn_nn Abonn_spec Models
