lib/data/models.ml: Abonn_nn Abonn_util Filename List Synth Sys
