(** Experiment drivers reproducing every table and figure of §V.

    Each function is deterministic given its inputs and returns plain
    data; [Report] renders the paper-style artifacts.  The benchmark
    suite (models + instances) is built once and shared across RQs, like
    the paper's 552-problem benchmark set. *)

type suite = {
  trained : Abonn_data.Models.trained list;
  instances : Abonn_data.Instances.t list;  (** all models, flattened *)
}

val build_suite :
  ?instances_per_model:int ->
  ?epochs:int ->
  ?models:Abonn_data.Models.spec list ->
  unit ->
  suite
(** Train every model family (default: all five of Table I) and generate
    its instances (default 12 per model). *)

(** {1 Table I} *)

type table1_row = {
  model : string;
  architecture : string;
  dataset : string;
  neurons : int;
  num_instances : int;
}

val table1 : suite -> table1_row list

(** {1 RQ1 — Table II and Fig. 4} *)

type rq1 = {
  records : Runner.record list;  (** every (engine × instance) run *)
  calls_budget : int;
}

val rq1 : ?calls:int -> ?engines:Runner.engine list -> suite -> rq1
(** Default budget: 800 AppVer calls per instance (the 1000 s analogue,
    see DESIGN.md §4). *)

type table2_cell = {
  engine : string;
  solved : int;
  avg_time : float;  (** mean model-time over all instances, seconds *)
}

val table2 : rq1 -> (string * table2_cell list) list
(** Per model family, one cell per engine. *)

val fig4 : rq1 -> (string * (float * float) list) list
(** Per model family: scatter points [(t_ABONN, speedup)] with
    [speedup = t_BaB-baseline / t_ABONN], for instances where both
    engines produced a verdict or timeout (paper Fig. 4). *)

(** {1 Fig. 3 — BaB tree sizes} *)

val fig3 : rq1 -> float array
(** Tree sizes (node counts) of the BaB-baseline runs. *)

(** {1 RQ2 — Fig. 5 hyper-parameter grids} *)

type grid = {
  lambdas : float list;
  cs : float list;
  cells : ((float * float) * float) list;  (** ((λ, c), avg model-time) *)
}

val rq2 :
  ?calls:int ->
  ?lambdas:float list ->
  ?cs:float list ->
  ?max_instances:int ->
  suite ->
  (string * grid) list
(** Per model family (defaults: λ ∈ {0, 0.25, 0.5, 0.75, 1},
    c ∈ {0, 0.1, 0.2, 0.5, 1}, 6 instances per model). *)

(** {1 RQ3 — Fig. 6 violated vs certified breakdown} *)

type rq3_box = {
  engine : string;
  verdict_class : string;  (** "violated" or "certified" *)
  count : int;
  box : Abonn_util.Stats.box option;  (** None when count = 0 *)
}

val rq3 : rq1 -> (string * rq3_box list) list
(** Per model family: model-time box summaries of BaB-baseline and ABONN
    split by the instance's consensus verdict class (instances where the
    two engines disagree on solvedness are classified by whichever
    solved it). *)

(** {1 Ablation (extension beyond the paper)} *)

val ablation : ?calls:int -> ?max_instances:int -> suite -> (string * table2_cell) list
(** One row per variant: ABONN default, pure exploitation (c=0), heavy
    exploration (c=2), depth-only reward (λ=1), bound-only reward (λ=0),
    uniform-random selection, best-first BaB and the BFS baseline —
    aggregated over the whole suite. *)

(** {1 Deep-violation study (extension: the regime of the paper's Fig. 4
    speedups)} *)

type deepviolated_row = {
  instance_id : string;
  bfs_calls : int;
  abonn_calls : int;
  crown_calls : int;
  abonn_speedup : float;   (** bfs_calls / abonn_calls *)
}

val deepviolated :
  ?screen_calls:int ->
  ?pool_per_model:int ->
  ?min_calls:int ->
  ?models:Abonn_data.Models.spec list ->
  unit ->
  deepviolated_row list
(** Mine attack-boundary instances (bands straddling the attack radius)
    whose counterexample needs at least [min_calls] (default 40)
    BaB-baseline calls — violations that hide deep in the tree — then
    compare BaB-baseline, ABONN and the αβ-CROWN-style baseline on them.
    Defaults: screening budget 1500 calls, pool of 16 candidate
    instances per model, MNIST models only (CNN mining is expensive). *)
