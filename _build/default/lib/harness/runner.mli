(** Uniform engine interface and instance runner.

    Engines wrap the repository's verifiers behind one signature so the
    experiment drivers can sweep them.  Per-instance "time" is reported
    two ways (DESIGN.md §4):

    - [wall_time]: real seconds (noisy, machine-dependent);
    - [model_time]: [appver_calls × per-call cost of the instance's
      network], the deterministic cost model used in the reproduced
      tables.  The per-call cost is measured once per network by timing
      a handful of root AppVer calls. *)

type engine = {
  name : string;
  run : budget:Abonn_util.Budget.t -> Abonn_spec.Problem.t -> Abonn_bab.Result.t;
}

val bab_baseline : engine
(** Breadth-first BaB ([Abonn_bab.Bfs]) — the paper's BaB-baseline. *)

val alphabeta_crown : engine
(** The αβ-CROWN-style baseline ([Abonn_crown.Alphabeta]). *)

val abonn : ?config:Abonn_core.Config.t -> unit -> engine
(** ABONN with the given configuration (default λ=0.5, c=0.2). *)

val abonn_named : string -> Abonn_core.Config.t -> engine
(** ABONN under an explicit display name (for sweeps/ablations). *)

val default_engines : engine list
(** The RQ1 line-up: [bab_baseline; alphabeta_crown; abonn ()]. *)

val per_call_cost : Abonn_spec.Problem.t -> float
(** Median wall-clock seconds of a root DeepPoly call on this problem
    (3 timed runs). *)

type record = {
  instance : Abonn_data.Instances.t;
  engine : string;
  result : Abonn_bab.Result.t;
  model_time : float;
}

val run_instance :
  ?calls:int -> ?seconds:float -> engine -> Abonn_data.Instances.t -> record
(** Run one engine on one instance under a fresh budget (defaults: 1000
    calls, no wall-clock limit). *)
