module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Synth = Abonn_data.Synth
module Result = Abonn_bab.Result
module Verdict = Abonn_spec.Verdict
module Config = Abonn_core.Config
module Stats = Abonn_util.Stats

type suite = {
  trained : Models.trained list;
  instances : Instances.t list;
}

let build_suite ?(instances_per_model = 12) ?(epochs = 15) ?(models = Models.all) () =
  let trained = List.map (fun spec -> Models.train ~epochs spec) models in
  let instances =
    List.concat_map (fun t -> Instances.generate ~count:instances_per_model t) trained
  in
  { trained; instances }

(* --- Table I --- *)

type table1_row = {
  model : string;
  architecture : string;
  dataset : string;
  neurons : int;
  num_instances : int;
}

let table1 suite =
  List.map
    (fun (t : Models.trained) ->
      let name = t.Models.spec.Models.name in
      { model = name;
        architecture = t.Models.spec.Models.architecture;
        dataset = t.Models.dataset.Synth.name;
        neurons = Abonn_nn.Network.num_neurons t.Models.network;
        num_instances =
          List.length (List.filter (fun (i : Instances.t) -> i.Instances.model = name) suite.instances)
      })
    suite.trained

(* --- RQ1 --- *)

type rq1 = {
  records : Runner.record list;
  calls_budget : int;
}

let rq1 ?(calls = 800) ?(engines = Runner.default_engines) suite =
  let records =
    List.concat_map
      (fun engine ->
        List.map (fun inst -> Runner.run_instance ~calls engine inst) suite.instances)
      engines
  in
  { records; calls_budget = calls }

type table2_cell = {
  engine : string;
  solved : int;
  avg_time : float;
}

let model_names suite_records =
  List.sort_uniq compare
    (List.map (fun (r : Runner.record) -> r.Runner.instance.Instances.model) suite_records)

let engine_names suite_records =
  (* preserve first-seen order *)
  List.fold_left
    (fun acc (r : Runner.record) ->
      if List.mem r.Runner.engine acc then acc else acc @ [ r.Runner.engine ])
    [] suite_records

let table2 (rq : rq1) =
  let models = model_names rq.records in
  let engines = engine_names rq.records in
  List.map
    (fun model ->
      let rows =
        List.map
          (fun engine ->
            let rs =
              List.filter
                (fun (r : Runner.record) ->
                  r.Runner.engine = engine && r.Runner.instance.Instances.model = model)
                rq.records
            in
            let solved =
              List.length
                (List.filter
                   (fun (r : Runner.record) -> Verdict.is_solved r.Runner.result.Result.verdict)
                   rs)
            in
            let times = Array.of_list (List.map (fun r -> r.Runner.model_time) rs) in
            { engine; solved; avg_time = Stats.mean times })
          engines
      in
      (model, rows))
    models

let find_record rq ~engine ~id =
  List.find_opt
    (fun (r : Runner.record) ->
      r.Runner.engine = engine && r.Runner.instance.Instances.id = id)
    rq.records

let fig4 (rq : rq1) =
  let models = model_names rq.records in
  List.map
    (fun model ->
      let points =
        rq.records
        |> List.filter_map (fun (r : Runner.record) ->
               if r.Runner.engine = "abonn" && r.Runner.instance.Instances.model = model then begin
                 match find_record rq ~engine:"bab-baseline" ~id:r.Runner.instance.Instances.id with
                 | Some base
                   when r.Runner.model_time > 0.0
                        && not
                             (Verdict.is_timeout r.Runner.result.Result.verdict
                              && Verdict.is_timeout base.Runner.result.Result.verdict) ->
                   (* double timeouts carry no signal: both burned the
                      same budget *)
                   Some (r.Runner.model_time, base.Runner.model_time /. r.Runner.model_time)
                 | Some _ | None -> None
               end
               else None)
      in
      (model, points))
    models

let fig3 (rq : rq1) =
  rq.records
  |> List.filter (fun (r : Runner.record) -> r.Runner.engine = "bab-baseline")
  |> List.map (fun (r : Runner.record) -> float_of_int r.Runner.result.Result.stats.Result.nodes)
  |> Array.of_list

(* --- RQ2 --- *)

type grid = {
  lambdas : float list;
  cs : float list;
  cells : ((float * float) * float) list;
}

(* Hyperparameters only influence the visiting order, and with a
   deterministic branching heuristic every order expands the same tree on
   certified problems — so the sweep is informative only on problems
   where a counterexample can be found early.  Prefer the
   larger-perturbation instances (factor >= 1.2), falling back to the
   head of the list when a model family has none. *)
let rq2_candidates suite model max_instances =
  let mine = List.filter (fun (i : Instances.t) -> i.Instances.model = model) suite.instances in
  let violated_leaning =
    List.filter
      (fun (i : Instances.t) ->
        match i.Instances.band with
        | Instances.Above_attack _ -> true
        | Instances.Between f -> f >= 0.5)
      mine
  in
  let pool = if violated_leaning = [] then mine else violated_leaning in
  List.filteri (fun k _ -> k < max_instances) pool

let rq2 ?(calls = 400) ?(lambdas = [ 0.0; 0.25; 0.5; 0.75; 1.0 ])
    ?(cs = [ 0.0; 0.1; 0.2; 0.5; 1.0 ]) ?(max_instances = 6) suite =
  let models = List.sort_uniq compare (List.map (fun (i : Instances.t) -> i.Instances.model) suite.instances) in
  List.map
    (fun model ->
      let insts = rq2_candidates suite model max_instances in
      let cells =
        List.concat_map
          (fun lambda ->
            List.map
              (fun c ->
                let engine =
                  Runner.abonn_named
                    (Printf.sprintf "abonn[l=%.2f,c=%.2f]" lambda c)
                    (Config.make ~lambda ~c ())
                in
                let times =
                  List.map
                    (fun inst -> (Runner.run_instance ~calls engine inst).Runner.model_time)
                    insts
                in
                ((lambda, c), Stats.mean (Array.of_list times)))
              cs)
          lambdas
      in
      (model, { lambdas; cs; cells }))
    models

(* --- RQ3 --- *)

type rq3_box = {
  engine : string;
  verdict_class : string;
  count : int;
  box : Stats.box option;
}

(* Consensus verdict class of an instance: whichever engine solved it
   decides; unsolved-by-both instances are dropped (the paper's boxes
   only cover concluded problems, timeouts saturate at the budget). *)
let verdict_class rq id =
  let verdict_of engine =
    Option.map (fun (r : Runner.record) -> r.Runner.result.Result.verdict)
      (find_record rq ~engine ~id)
  in
  let classify = function
    | Some (Verdict.Falsified _) -> Some "violated"
    | Some Verdict.Verified -> Some "certified"
    | Some Verdict.Timeout | None -> None
  in
  match classify (verdict_of "bab-baseline") with
  | Some c -> Some c
  | None -> classify (verdict_of "abonn")

let rq3 (rq : rq1) =
  let models = model_names rq.records in
  List.map
    (fun model ->
      let boxes =
        List.concat_map
          (fun engine ->
            List.map
              (fun cls ->
                let times =
                  rq.records
                  |> List.filter_map (fun (r : Runner.record) ->
                         if
                           r.Runner.engine = engine
                           && r.Runner.instance.Instances.model = model
                           && verdict_class rq r.Runner.instance.Instances.id = Some cls
                         then Some r.Runner.model_time
                         else None)
                  |> Array.of_list
                in
                { engine;
                  verdict_class = cls;
                  count = Array.length times;
                  box = (if Array.length times = 0 then None else Some (Stats.box_plot times))
                })
              [ "violated"; "certified" ])
          [ "bab-baseline"; "abonn" ]
      in
      (model, boxes))
    models

(* --- Ablation --- *)

let ablation ?(calls = 400) ?(max_instances = 6) suite =
  let insts =
    let by_model = Hashtbl.create 8 in
    List.filter
      (fun (i : Instances.t) ->
        let k = Option.value ~default:0 (Hashtbl.find_opt by_model i.Instances.model) in
        Hashtbl.replace by_model i.Instances.model (k + 1);
        k < max_instances)
      suite.instances
  in
  let variants =
    [ Runner.abonn_named "abonn(default)" Config.default;
      Runner.abonn_named "abonn(c=0,greedy)" (Config.make ~c:0.0 ());
      Runner.abonn_named "abonn(c=2,explore)" (Config.make ~c:2.0 ());
      Runner.abonn_named "abonn(lambda=1,depth-only)" (Config.make ~lambda:1.0 ());
      Runner.abonn_named "abonn(lambda=0,bound-only)" (Config.make ~lambda:0.0 ());
      Runner.abonn_named "abonn(random-selection)"
        (Config.make ~selection:(Config.Uniform_random 17) ());
      Runner.abonn_named "abonn(babsr)" (Config.make ~heuristic:Abonn_bab.Branching.babsr ());
      Runner.abonn_named "abonn(widest)" (Config.make ~heuristic:Abonn_bab.Branching.widest ());
      Runner.abonn_named "abonn(zonotope-appver)"
        (Config.make ~appver:Abonn_prop.Appver.zonotope ());
      { Runner.name = "bestfirst";
        run = (fun ~budget problem -> Abonn_bab.Bestfirst.verify ~budget problem) };
      { Runner.name = "inputsplit";
        run = (fun ~budget problem -> Abonn_bab.Inputsplit.verify ~budget problem) };
      Runner.bab_baseline
    ]
  in
  List.map
    (fun engine ->
      let records = List.map (fun inst -> Runner.run_instance ~calls engine inst) insts in
      let solved =
        List.length
          (List.filter
             (fun (r : Runner.record) -> Verdict.is_solved r.Runner.result.Result.verdict)
             records)
      in
      let times = Array.of_list (List.map (fun r -> r.Runner.model_time) records) in
      (engine.Runner.name, { engine = engine.Runner.name; solved; avg_time = Stats.mean times }))
    variants

(* --- Deep-violation study --- *)

type deepviolated_row = {
  instance_id : string;
  bfs_calls : int;
  abonn_calls : int;
  crown_calls : int;
  abonn_speedup : float;
}

let deepviolated ?(screen_calls = 1500) ?(pool_per_model = 16) ?(min_calls = 40)
    ?(models = [ Abonn_data.Models.mnist_l2; Abonn_data.Models.mnist_l4 ]) () =
  let bands =
    [ Instances.Above_attack 0.99; Instances.Above_attack 1.0; Instances.Above_attack 1.01;
      Instances.Between 0.95 ]
  in
  List.concat_map
    (fun spec ->
      let trained = Models.train spec in
      let pool = Instances.generate ~count:pool_per_model ~bands trained in
      List.filter_map
        (fun (inst : Instances.t) ->
          let budget () = Abonn_util.Budget.of_calls screen_calls in
          let bfs = Abonn_bab.Bfs.verify ~budget:(budget ()) inst.Instances.problem in
          match bfs.Result.verdict with
          | Verdict.Falsified _ when bfs.Result.stats.Result.appver_calls >= min_calls ->
            let abonn = Abonn_core.Abonn.verify ~budget:(budget ()) inst.Instances.problem in
            let crown =
              Abonn_crown.Alphabeta.verify ~budget:(budget ()) inst.Instances.problem
            in
            let bfs_calls = bfs.Result.stats.Result.appver_calls in
            let abonn_calls = abonn.Result.stats.Result.appver_calls in
            Some
              { instance_id = inst.Instances.id;
                bfs_calls;
                abonn_calls;
                crown_calls = crown.Result.stats.Result.appver_calls;
                abonn_speedup = float_of_int bfs_calls /. float_of_int (Stdlib.max 1 abonn_calls)
              }
          | Verdict.Falsified _ | Verdict.Verified | Verdict.Timeout -> None)
        pool)
    models
