lib/harness/experiment.mli: Abonn_data Abonn_util Runner
