lib/harness/runner.ml: Abonn_bab Abonn_core Abonn_crown Abonn_data Abonn_prop Abonn_spec Abonn_util Array Hashtbl Unix
