lib/harness/report.mli: Experiment Runner
