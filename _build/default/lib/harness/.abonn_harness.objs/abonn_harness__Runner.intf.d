lib/harness/runner.mli: Abonn_bab Abonn_core Abonn_data Abonn_spec Abonn_util
