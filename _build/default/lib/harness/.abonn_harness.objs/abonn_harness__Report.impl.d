lib/harness/report.ml: Abonn_bab Abonn_data Abonn_spec Abonn_util Array Buffer Experiment Float List Printf Runner Stdlib
