lib/harness/experiment.ml: Abonn_bab Abonn_core Abonn_crown Abonn_data Abonn_nn Abonn_prop Abonn_spec Abonn_util Array Hashtbl List Option Printf Runner Stdlib
