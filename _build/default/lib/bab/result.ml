type stats = {
  appver_calls : int;
  nodes : int;
  max_depth : int;
  wall_time : float;
}

type t = {
  verdict : Abonn_spec.Verdict.t;
  stats : stats;
}

let make ~verdict ~appver_calls ~nodes ~max_depth ~wall_time =
  { verdict; stats = { appver_calls; nodes; max_depth; wall_time } }

let pp fmt t =
  Format.fprintf fmt "%a (calls=%d nodes=%d depth=%d time=%.3fs)" Abonn_spec.Verdict.pp
    t.verdict t.stats.appver_calls t.stats.nodes t.stats.max_depth t.stats.wall_time
