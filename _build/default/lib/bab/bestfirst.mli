(** Best-first branch-and-bound.

    A stronger classical exploration order than the breadth-first
    baseline: the frontier is a priority queue keyed by the certified
    bound [p̂], so the sub-problem the relaxation considers *most
    violated* is always expanded next.  Children are evaluated when
    enqueued (their bound is the key).  This engine is the search
    backbone of the αβ-CROWN-style baseline ([Abonn_crown]). *)

val verify :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  Abonn_spec.Problem.t ->
  Result.t
(** Defaults: DeepPoly AppVer, DeepSplit heuristic, unlimited budget. *)
