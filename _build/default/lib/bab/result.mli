(** Outcome of one verification run: the verdict plus search statistics.

    All engines (BaB-baseline, best-first, ABONN, the αβ-CROWN-style
    baseline) report through this type so the experiment harness can
    compare them uniformly.  [appver_calls] is the cost unit used in the
    reproduced tables (DESIGN.md §4: deterministic substitute for
    wall-clock). *)

type stats = {
  appver_calls : int;  (** number of AppVer invocations *)
  nodes : int;         (** BaB-tree nodes created, root included *)
  max_depth : int;     (** deepest node created *)
  wall_time : float;   (** seconds *)
}

type t = {
  verdict : Abonn_spec.Verdict.t;
  stats : stats;
}

val make :
  verdict:Abonn_spec.Verdict.t ->
  appver_calls:int ->
  nodes:int ->
  max_depth:int ->
  wall_time:float ->
  t

val pp : Format.formatter -> t -> unit
