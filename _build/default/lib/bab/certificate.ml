module Split = Abonn_spec.Split
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver

type leaf = {
  gamma : Split.gamma;
  phat : float;
  by_exact : bool;
}

type t = {
  leaves : leaf list;
  appver_name : string;
}

type check_error =
  | Leaf_not_proved of Split.gamma * float
  | Coverage_gap of Split.gamma
  | Duplicate_or_overlap of Split.gamma

let num_leaves t = List.length t.leaves

let pp_error fmt = function
  | Leaf_not_proved (gamma, phat) ->
    Format.fprintf fmt "leaf %a replays with non-positive bound %g" Split.pp gamma phat
  | Coverage_gap gamma -> Format.fprintf fmt "split space not covered below %a" Split.pp gamma
  | Duplicate_or_overlap gamma ->
    Format.fprintf fmt "overlapping leaves below %a" Split.pp gamma

(* The leaves must be exactly the leaf set of a binary split tree: at
   every internal node all leaves agree on the split ReLU and both
   phases occur.  [suffixes] are the remaining split sequences relative
   to the current prefix. *)
let rec check_cover ~prefix suffixes =
  match suffixes with
  | [] -> Error (Coverage_gap prefix)
  | [ [] ] -> Ok ()
  | _ when List.exists (fun s -> s = []) suffixes ->
    (* an interior leaf together with deeper ones: double coverage *)
    Error (Duplicate_or_overlap prefix)
  | _ ->
    let first = function
      | (c : Split.constr) :: _ -> c
      | [] -> assert false
    in
    let relu = (first (List.hd suffixes)).Split.relu in
    if List.exists (fun s -> (first s).Split.relu <> relu) suffixes then
      Error (Duplicate_or_overlap prefix)
    else begin
      let side phase =
        List.filter_map
          (fun s ->
            let c = first s in
            if Split.phase_equal c.Split.phase phase then Some (List.tl s) else None)
          suffixes
      in
      let plus = side Split.Active and minus = side Split.Inactive in
      match
        check_cover ~prefix:(prefix @ [ { Split.relu; phase = Split.Active } ]) plus
      with
      | Error _ as e -> e
      | Ok () ->
        check_cover ~prefix:(prefix @ [ { Split.relu; phase = Split.Inactive } ]) minus
    end

let check ?appver problem t =
  let appver =
    match appver with
    | Some v -> v
    | None -> Option.value ~default:Appver.deeppoly (Appver.find t.appver_name)
  in
  (* 1. replay every leaf *)
  let rec replay = function
    | [] -> Ok ()
    | leaf :: rest ->
      let ok =
        if leaf.by_exact then
          match Exact.resolve problem leaf.gamma with
          | `Verified -> true
          | `Falsified _ -> false
        else Outcome.proved (appver.Appver.run problem leaf.gamma)
      in
      if ok then replay rest else Error (Leaf_not_proved (leaf.gamma, leaf.phat))
  in
  match replay t.leaves with
  | Error _ as e -> e
  | Ok () -> check_cover ~prefix:[] (List.map (fun l -> l.gamma) t.leaves)
