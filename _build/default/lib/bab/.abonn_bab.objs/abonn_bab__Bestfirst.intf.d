lib/bab/bestfirst.mli: Abonn_prop Abonn_spec Abonn_util Branching Result
