lib/bab/inputsplit.mli: Abonn_prop Abonn_spec Abonn_util Result
