lib/bab/bfs.ml: Abonn_prop Abonn_spec Abonn_util Branching Certificate Exact List Queue Result Stdlib Unix
