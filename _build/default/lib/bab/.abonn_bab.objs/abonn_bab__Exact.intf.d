lib/bab/exact.mli: Abonn_spec
