lib/bab/exact.ml: Abonn_lp Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Array Float
