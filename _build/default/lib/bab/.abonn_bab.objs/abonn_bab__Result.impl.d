lib/bab/result.ml: Abonn_spec Format
