lib/bab/branching.ml: Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Array Float List
