lib/bab/inputsplit.ml: Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Abonn_util Array Float Queue Result Stdlib Unix
