lib/bab/bestfirst.ml: Abonn_prop Abonn_spec Abonn_util Branching Exact Result Stdlib Unix
