lib/bab/branching.mli: Abonn_prop Abonn_spec
