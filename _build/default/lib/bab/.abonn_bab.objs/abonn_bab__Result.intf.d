lib/bab/result.mli: Abonn_spec Format
