lib/bab/certificate.ml: Abonn_prop Abonn_spec Exact Format List Option
