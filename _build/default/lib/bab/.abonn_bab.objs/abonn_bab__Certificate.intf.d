lib/bab/certificate.mli: Abonn_prop Abonn_spec Format
