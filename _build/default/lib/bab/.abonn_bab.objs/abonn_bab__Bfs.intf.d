lib/bab/bfs.mli: Abonn_prop Abonn_spec Abonn_util Branching Certificate Result
