(** ReLU selection heuristics — the [H] of Alg. 1.

    Given a node Γ and the AppVer's pre-activation bounds at that node, a
    heuristic picks the global index of an *unstable, not yet
    constrained* ReLU to split on, or [None] when no such ReLU exists
    (the node is then resolved exactly, see [Abonn_bab.Exact]).

    Heuristics are two-stage: [prepare] runs once per verification
    problem (pre-computing, e.g., layer-sensitivity matrices) and yields
    a cheap per-node chooser.  Following the paper (§III), the default is
    the DeepSplit-style indirect-effect heuristic [14]; BaBSR [10],
    FSB-lite [15] and a widest-interval baseline are also provided, and
    ABONN is orthogonal to this choice. *)

type chooser =
  gamma:Abonn_spec.Split.gamma ->
  pre_bounds:Abonn_prop.Bounds.t array ->
  int option

type t = {
  name : string;
  prepare : Abonn_spec.Problem.t -> chooser;
}

val widest : t
(** Split the unstable neuron with the widest pre-activation interval. *)

val babsr : t
(** BaBSR-style score: the triangle relaxation's intercept gap
    [u·(−l)/(u−l)], i.e. how much slack the relaxation introduces at this
    neuron. *)

val deepsplit : t
(** DeepSplit-style indirect effect: relaxation gap weighted by the
    neuron's sensitivity — the accumulated absolute weight mass on every
    path from the neuron to the property outputs.  Default heuristic. *)

val fsb : t
(** Filtered smart branching: shortlist the top candidates by
    [deepsplit] score, then evaluate each by actually clamping the
    neuron and propagating cheap interval bounds for both children;
    pick the candidate whose worse child improves most. *)

val all : t list
val find : string -> t option
val default : t
(** [deepsplit]. *)
