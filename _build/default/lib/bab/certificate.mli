(** Verification certificates: checkable evidence for a [Verified] verdict.

    A BaB run that proves a property implicitly covers the input region
    with a finite set of leaves, each discharged by one AppVer call (or
    an exact LP).  This module makes that object explicit — the list of
    discharged leaves with the split sequence Γ that identifies each —
    and provides an {e independent checker} that replays every leaf with
    a fresh AppVer call and verifies the leaves cover the split space.

    The checker trusts only the bound propagation (which the test suite
    validates against sampling separately); it does not trust the search
    that produced the certificate.  This mirrors the proof-production
    facilities of modern verifiers and makes "Verified" auditable.

    Certificates are produced by [Bfs.verify_with_certificate]; any
    engine could emit one, the BFS engine is the natural reference. *)

type leaf = {
  gamma : Abonn_spec.Split.gamma;
  phat : float;            (** certified bound recorded at discharge *)
  by_exact : bool;         (** discharged by the exact leaf LP *)
}

type t = {
  leaves : leaf list;
  appver_name : string;
}

type check_error =
  | Leaf_not_proved of Abonn_spec.Split.gamma * float
      (** replay returned this non-positive bound *)
  | Coverage_gap of Abonn_spec.Split.gamma
      (** a region of the split space is not covered by any leaf *)
  | Duplicate_or_overlap of Abonn_spec.Split.gamma

val check :
  ?appver:Abonn_prop.Appver.t ->
  Abonn_spec.Problem.t ->
  t ->
  (unit, check_error) result
(** Replay every leaf and verify the leaves form a partition of the
    split space (an exact binary-tree cover: for every internal node,
    both phases of the split ReLU are covered). *)

val num_leaves : t -> int

val pp_error : Format.formatter -> check_error -> unit
