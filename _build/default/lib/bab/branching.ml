module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem
module Property = Abonn_spec.Property
module Bounds = Abonn_prop.Bounds

type chooser =
  gamma:Abonn_spec.Split.gamma ->
  pre_bounds:Abonn_prop.Bounds.t array ->
  int option

type t = { name : string; prepare : Problem.t -> chooser }

(* Enumerate splittable neurons: unstable under the node's bounds and not
   already constrained on the path. *)
let candidates affine gamma pre_bounds =
  let acc = ref [] in
  Array.iteri
    (fun l (b : Bounds.t) ->
      List.iter
        (fun idx ->
          let relu = Affine.relu_index affine ~layer:l ~idx in
          if Split.constrained gamma ~relu = None then acc := (relu, l, idx) :: !acc)
        (Bounds.unstable_indices b))
    pre_bounds;
  List.rev !acc

let argmax_by score cands =
  match cands with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun (bc, bs) c ->
          let s = score c in
          if s > bs then (c, s) else (bc, bs))
        (first, score first) rest
    in
    let (relu, _, _), _ = best in
    Some relu

(* Gap of the triangle relaxation at ẑ = 0: the chord evaluates to
   u·(−l)/(u−l) where the true ReLU is 0 — the BaBSR improvement proxy. *)
let relaxation_gap lo hi = hi *. -.lo /. (hi -. lo)

let widest =
  { name = "widest";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) = Bounds.width pre_bounds.(l) i in
          argmax_by score (candidates affine gamma pre_bounds)) }

let babsr =
  { name = "babsr";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) =
            relaxation_gap pre_bounds.(l).Bounds.lower.(i) pre_bounds.(l).Bounds.upper.(i)
          in
          argmax_by score (candidates affine gamma pre_bounds)) }

(* Per-layer sensitivity of each hidden neuron: total absolute weight
   mass over all paths from the neuron's ReLU output to the property
   rows.  Computed once per problem with absolute-value matrix chains. *)
let sensitivities problem =
  let affine = problem.Problem.affine in
  let prop = problem.Problem.property in
  let n_layers = Affine.num_layers affine in
  let n_hidden = n_layers - 1 in
  let abs_m = Matrix.map Float.abs in
  let sens = Array.make n_hidden [||] in
  (* s over post-activation of hidden layer (n_hidden - 1): |C|·|W_last| *)
  let rec walk l acc =
    (* acc: m × width(l) absolute-coefficient matrix over post-activation
       of hidden layer l *)
    let colsum = Array.init acc.Matrix.cols (fun j ->
        let s = ref 0.0 in
        for r = 0 to acc.Matrix.rows - 1 do
          s := !s +. Matrix.get acc r j
        done;
        !s)
    in
    sens.(l) <- colsum;
    if l > 0 then walk (l - 1) (Matrix.matmul acc (abs_m Affine.(affine.weights.(l))))
  in
  if n_hidden > 0 then
    walk (n_hidden - 1) (Matrix.matmul (abs_m prop.Property.c) (abs_m Affine.(affine.weights.(n_layers - 1))));
  sens

let deepsplit =
  { name = "deepsplit";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        let sens = sensitivities problem in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) =
            relaxation_gap pre_bounds.(l).Bounds.lower.(i) pre_bounds.(l).Bounds.upper.(i)
            *. sens.(l).(i)
          in
          argmax_by score (candidates affine gamma pre_bounds)) }

let fsb_shortlist = 4

let fsb =
  { name = "fsb";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        let sens = sensitivities problem in
        fun ~gamma ~pre_bounds ->
          let cands = candidates affine gamma pre_bounds in
          match cands with
          | [] -> None
          | _ ->
            let scored =
              List.map
                (fun ((_, l, i) as c) ->
                  let s =
                    relaxation_gap pre_bounds.(l).Bounds.lower.(i)
                      pre_bounds.(l).Bounds.upper.(i)
                    *. sens.(l).(i)
                  in
                  (c, s))
                cands
            in
            let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
            let top = List.filteri (fun i _ -> i < fsb_shortlist) sorted in
            (* Look-ahead: clamp each shortlisted neuron both ways and
               propagate cheap interval bounds; prefer the split whose
               *worse* child gets the best certified bound. *)
            let lookahead ((relu, _, _), _) =
              let child phase =
                let gamma' = Split.extend gamma ~relu ~phase in
                (Abonn_prop.Interval.run problem gamma').Abonn_prop.Outcome.phat
              in
              Float.min (child Split.Active) (child Split.Inactive)
            in
            begin match top with
            | [] -> None
            | first :: rest ->
              let best =
                List.fold_left
                  (fun (bc, bs) c ->
                    let s = lookahead c in
                    if s > bs then (c, s) else (bc, bs))
                  (first, lookahead first) rest
              in
              let ((relu, _, _), _), _ = best in
              Some relu
            end) }

let all = [ deepsplit; babsr; fsb; widest ]

let find name = List.find_opt (fun h -> h.name = name) all

let default = deepsplit
