(** BaB-baseline: breadth-first branch-and-bound (§III, §V).

    The naive strategy the paper compares against: sub-problems are
    visited in first-come-first-served order.  Each visited node gets one
    AppVer call; a positive bound prunes it, a validated counterexample
    terminates the run, and otherwise the node is split on the ReLU
    chosen by the branching heuristic, appending both children to the
    FIFO queue.  An exhausted queue proves the property. *)

val verify :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  Abonn_spec.Problem.t ->
  Result.t
(** Defaults: DeepPoly AppVer, DeepSplit heuristic, unlimited budget.
    Returns [Timeout] when the budget trips before the queue empties. *)

val verify_with_certificate :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  Abonn_spec.Problem.t ->
  Result.t * Certificate.t option
(** Like [verify], additionally returning the discharged-leaf
    certificate when the verdict is [Verified] (see [Certificate]). *)
