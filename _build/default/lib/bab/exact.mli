(** Exact resolution of fully-stabilised BaB leaves.

    When a node has no splittable ReLU left (every unit is stable under
    its bounds or fixed by Γ), the network restricted to the node is
    affine, and the node's LP relaxation is *exact*: its feasible set is
    precisely [{x ∈ Φ : Γ(x)}] and its optimum is the true minimum
    margin.  Such leaves are therefore decided by one LP call instead of
    being split forever: a positive optimum certifies the leaf, a
    negative one yields a genuine counterexample (the LP minimiser).

    This situation is rare — an invalid candidate at a fully-split node —
    but every complete engine needs the case handled to terminate. *)

exception Unresolvable of string
(** Raised if the LP reports a clearly negative optimum (< −1e−7) whose
    minimiser nevertheless fails concrete validation; never expected in
    practice.  Ties (margin exactly 0) are settled by concrete
    validation and count as violations, consistent with
    [Abonn_spec.Property.violated]. *)

val resolve :
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  [ `Verified | `Falsified of float array ]
