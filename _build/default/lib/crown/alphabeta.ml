module Budget = Abonn_util.Budget
module Rng = Abonn_util.Rng
module Verdict = Abonn_spec.Verdict
module Result = Abonn_bab.Result
module Branching = Abonn_bab.Branching
module Attack = Abonn_attack.Attack

let verify ?(attack = Attack.best_effort) ?(attack_seed = 0)
    ?(heuristic = Branching.fsb) ?budget problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let started = Unix.gettimeofday () in
  let rng = Rng.create attack_seed in
  match attack.Attack.run rng problem with
  | Some x ->
    Result.make ~verdict:(Verdict.Falsified x) ~appver_calls:(Budget.calls_used budget)
      ~nodes:0 ~max_depth:0
      ~wall_time:(Unix.gettimeofday () -. started)
  | None ->
    let result = Abonn_bab.Bestfirst.verify ~heuristic ~budget problem in
    { result with
      Result.stats =
        { result.Result.stats with
          Result.wall_time = Unix.gettimeofday () -. started } }
