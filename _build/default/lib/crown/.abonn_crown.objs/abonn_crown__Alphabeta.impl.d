lib/crown/alphabeta.ml: Abonn_attack Abonn_bab Abonn_spec Abonn_util Unix
