lib/crown/alphabeta.mli: Abonn_attack Abonn_bab Abonn_spec Abonn_util
