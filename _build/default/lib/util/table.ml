type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let spare = width - n in
    match align with
    | Left -> s ^ String.make spare ' '
    | Right -> String.make spare ' ' ^ s
    | Center ->
      let left = spare / 2 in
      String.make left ' ' ^ s ^ String.make (spare - left) ' '
  end

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    List.init ncols (fun i -> match List.nth_opt align i with Some a -> a | None -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> Stdlib.max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let padded = List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_row row))
    rows;
  Buffer.contents buf

let bar ?(width = 40) v vmax =
  if vmax <= 0.0 then ""
  else begin
    let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
    let n = Stdlib.max 0 (Stdlib.min width n) in
    String.make n '#'
  end

let fmt_float ?(digits = 2) v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.*f" digits v
