let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min xs =
  if Array.length xs = 0 then invalid_arg "Stats.min: empty";
  Array.fold_left Float.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty";
  Array.fold_left Float.max xs.(0) xs

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.0

type box = {
  whisker_lo : float;
  q1 : float;
  med : float;
  q3 : float;
  whisker_hi : float;
  outliers : float list;
}

let box_plot xs =
  let q1 = percentile xs 25.0 in
  let q3 = percentile xs 75.0 in
  let med = median xs in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) in
  let hi_fence = q3 +. (1.5 *. iqr) in
  let inside = Array.to_list xs |> List.filter (fun x -> x >= lo_fence && x <= hi_fence) in
  let outliers = Array.to_list xs |> List.filter (fun x -> x < lo_fence || x > hi_fence) in
  let whisker_lo, whisker_hi =
    match inside with
    | [] -> (med, med)
    | x :: rest ->
      List.fold_left (fun (lo, hi) y -> (Float.min lo y, Float.max hi y)) (x, x) rest
  in
  (* With few samples the interpolated quartiles can overshoot the
     extreme in-fence data; clamp so whiskers never retract into the
     box. *)
  let whisker_lo = Float.min whisker_lo q1 in
  let whisker_hi = Float.max whisker_hi q3 in
  { whisker_lo; q1; med; q3; whisker_hi; outliers }

type histogram = { edges : float array; counts : int array }

let bucketize edges xs =
  let bins = Array.length edges - 1 in
  let counts = Array.make bins 0 in
  let place x =
    (* Clamp into the edge range first: edges computed through log/exp can
       round past the extreme data by a few ulps. *)
    let x = Float.max edges.(0) (Float.min edges.(bins) x) in
    (* Linear scan is fine: bin counts are small and edges may be uneven. *)
    let rec loop i =
      if i = bins - 1 then counts.(i) <- counts.(i) + 1
      else if x < edges.(i + 1) then counts.(i) <- counts.(i) + 1
      else loop (i + 1)
    in
    loop 0
  in
  Array.iter place xs;
  counts

let histogram ?(bins = 10) xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then { edges = [| 0.0; 1.0 |]; counts = [| 0 |] }
  else begin
    let lo = min xs and hi = max xs in
    let hi = if hi = lo then lo +. 1.0 else hi in
    let width = (hi -. lo) /. float_of_int bins in
    let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
    { edges; counts = bucketize edges xs }
  end

let log_histogram ?(bins = 10) xs =
  if bins <= 0 then invalid_arg "Stats.log_histogram: bins must be positive";
  if Array.length xs = 0 then { edges = [| 1.0; 10.0 |]; counts = [| 0 |] }
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.log_histogram: non-positive datum") xs;
    let lo = min xs and hi = max xs in
    let hi = if hi = lo then lo *. 10.0 else hi in
    let llo = log lo and lhi = log hi in
    let width = (lhi -. llo) /. float_of_int bins in
    let edges = Array.init (bins + 1) (fun i -> exp (llo +. (float_of_int i *. width))) in
    { edges; counts = bucketize edges xs }
  end

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end
