lib/util/table.mli:
