lib/util/heap.mli:
