lib/util/stats.mli:
