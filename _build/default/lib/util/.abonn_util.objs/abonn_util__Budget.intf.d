lib/util/budget.mli:
