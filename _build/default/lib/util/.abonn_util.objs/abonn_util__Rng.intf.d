lib/util/rng.mli:
