(** Small descriptive-statistics toolkit used by the experiment harness
    (Table II averages, Fig. 3 histograms, Fig. 6 box plots). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays of length < 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min : float array -> float
(** Minimum.  Raises [Invalid_argument] on empty input. *)

val max : float array -> float
(** Maximum.  Raises [Invalid_argument] on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]] using linear interpolation
    between closest ranks.  Raises [Invalid_argument] on empty input. *)

val median : float array -> float
(** 50th percentile. *)

type box = {
  whisker_lo : float;  (** lowest datum >= Q1 - 1.5 IQR *)
  q1 : float;
  med : float;
  q3 : float;
  whisker_hi : float;  (** highest datum <= Q3 + 1.5 IQR *)
  outliers : float list;
}
(** Five-number summary in Tukey box-plot convention. *)

val box_plot : float array -> box
(** Box-plot summary.  Raises [Invalid_argument] on empty input. *)

type histogram = {
  edges : float array;   (** [n+1] bin edges *)
  counts : int array;    (** [n] counts *)
}

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram over the data range (default 10 bins). *)

val log_histogram : ?bins:int -> float array -> histogram
(** Histogram with logarithmically spaced bin edges; all data must be
    positive. *)

val geometric_mean : float array -> float
(** Geometric mean of positive data; 0 on the empty array. *)
