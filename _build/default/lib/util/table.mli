(** Plain-text table rendering for the experiment reports.

    Produces aligned ASCII tables in the style of the paper's Table I/II,
    plus simple bar-style renderings used for the figure reproductions. *)

type align = Left | Right | Center

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a table with a separator under the
    header.  [align] gives per-column alignment (default all [Left]; a
    short list is padded with [Left]).  Rows shorter than the header are
    padded with empty cells. *)

val bar : ?width:int -> float -> float -> string
(** [bar v vmax] renders a horizontal bar of ['#'] proportional to
    [v /. vmax] (default full width 40).  Used for textual histograms. *)

val fmt_float : ?digits:int -> float -> string
(** Compact float formatting: fixed-point with [digits] decimals
    (default 2), with [inf]/[nan] spelled out. *)
