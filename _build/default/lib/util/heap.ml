type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before a b] is the strict heap order: smaller key first, FIFO on ties. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let new_cap = Stdlib.max 16 (cap * 2) in
    let data = Array.make new_cap h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry;
  grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let clear h =
  h.size <- 0;
  h.next_seq <- 0

let to_list h =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) ((h.data.(i).key, h.data.(i).value) :: acc)
  in
  loop (h.size - 1) []
