(** Imperative binary min-heap keyed by floats.

    Used by the best-first BaB engine ([Abonn_bab.Bestfirst]) to pop the
    sub-problem with the smallest certified bound, and by the breadth-first
    baseline when a bounded frontier is requested. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key] (smaller pops first).
    Ties break by insertion order (FIFO), which keeps searches
    deterministic. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key binding. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-key binding without removing it. *)

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot of the contents in unspecified order. *)
