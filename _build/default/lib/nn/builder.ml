let mlp rng ~dims =
  match dims with
  | [] | [ _ ] -> invalid_arg "Builder.mlp: need at least input and output dims"
  | in_dim :: rest ->
    let rec build cur_dim remaining acc =
      match remaining with
      | [] -> List.rev acc
      | [ out_dim ] ->
        List.rev (Layer.random_linear rng ~in_dim:cur_dim ~out_dim :: acc)
      | hidden :: rest ->
        let acc =
          Layer.Relu hidden :: Layer.random_linear rng ~in_dim:cur_dim ~out_dim:hidden :: acc
        in
        build hidden rest acc
    in
    Network.create (build in_dim rest [])

type conv_spec = { out_channels : int; kernel : int; stride : int; padding : int }

let convnet rng ~in_channels ~in_h ~in_w ~convs ~dense ~num_classes =
  let layers = ref [] in
  let c = ref in_channels and h = ref in_h and w = ref in_w in
  List.iter
    (fun spec ->
      let conv =
        Conv.create rng ~in_channels:!c ~in_h:!h ~in_w:!w ~out_channels:spec.out_channels
          ~kernel:spec.kernel ~stride:spec.stride ~padding:spec.padding
      in
      layers := Layer.Relu (Conv.output_dim conv) :: Layer.Conv2d conv :: !layers;
      c := spec.out_channels;
      h := Conv.out_h conv;
      w := Conv.out_w conv)
    convs;
  let flat = !c * !h * !w in
  let cur = ref flat in
  List.iter
    (fun width ->
      layers := Layer.Relu width :: Layer.random_linear rng ~in_dim:!cur ~out_dim:width :: !layers;
      cur := width)
    dense;
  layers := Layer.random_linear rng ~in_dim:!cur ~out_dim:num_classes :: !layers;
  Network.create (List.rev !layers)
