(** 2-D convolution layers over flat input vectors.

    Images are stored channel-major: a [c × h × w] tensor is the flat
    vector where index [(ch * h + y) * w + x] holds pixel [(y, x)] of
    channel [ch].  Convolutions support stride and zero padding.

    Besides the concrete [forward]/[backward] used for training, a
    convolution can be materialised as a dense matrix ([to_matrix]) so the
    verification engines (bound propagation, LP encoding) only ever deal
    with affine layers. *)

type t = {
  in_channels : int;
  in_h : int;
  in_w : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
  weight : float array;
      (** flattened [out_c][in_c][kh][kw]; index
          [((oc * in_c + ic) * kh + ky) * kw + kx] *)
  bias : float array;  (** length [out_channels] *)
}

val out_h : t -> int
val out_w : t -> int

val input_dim : t -> int
(** [in_channels * in_h * in_w]. *)

val output_dim : t -> int
(** [out_channels * out_h * out_w]. *)

val create :
  Abonn_util.Rng.t ->
  in_channels:int ->
  in_h:int ->
  in_w:int ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  padding:int ->
  t
(** He-initialised square-kernel convolution. *)

val forward : t -> float array -> float array
(** Concrete evaluation.  Raises [Invalid_argument] on wrong input size. *)

type grads = { d_weight : float array; d_bias : float array }

val backward : t -> input:float array -> d_out:float array -> float array * grads
(** [backward conv ~input ~d_out] returns the gradient w.r.t. the input
    along with parameter gradients. *)

val apply_grads : t -> grads -> lr:float -> t
(** Gradient-descent step returning the updated layer. *)

val to_matrix : t -> Abonn_tensor.Matrix.t * float array
(** Materialise as [(w, b)] such that [forward conv x = w x + b] for all
    [x].  The matrix has [output_dim] rows and [input_dim] columns. *)
