type sample = { features : float array; label : int }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  lr_decay : float;
  verbose : bool;
}

let default_config =
  { epochs = 12; batch_size = 16; learning_rate = 0.05; lr_decay = 0.9; verbose = false }

let softmax logits =
  let m = Array.fold_left Float.max logits.(0) logits in
  let exps = Array.map (fun v -> exp (v -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps

let cross_entropy_grad logits label =
  let probs = softmax logits in
  let loss = -.log (Float.max 1e-12 probs.(label)) in
  let grad = Array.mapi (fun i p -> if i = label then p -. 1.0 else p) probs in
  (loss, grad)

(* Accumulate parameter gradients of a batch into the first sample's
   gradients; Layer.grads are summed structurally. *)
let add_grads acc more =
  Array.mapi
    (fun i ai ->
      match ai, more.(i) with
      | Layer.No_grads, Layer.No_grads -> Layer.No_grads
      | Layer.Linear_grads a, Layer.Linear_grads b ->
        Layer.Linear_grads
          { d_weight = Abonn_tensor.Matrix.add a.d_weight b.d_weight;
            d_bias = Array.mapi (fun k v -> v +. b.d_bias.(k)) a.d_bias }
      | Layer.Conv_grads a, Layer.Conv_grads b ->
        Layer.Conv_grads
          { Conv.d_weight = Array.mapi (fun k v -> v +. b.Conv.d_weight.(k)) a.Conv.d_weight;
            d_bias = Array.mapi (fun k v -> v +. b.Conv.d_bias.(k)) a.Conv.d_bias }
      | (Layer.No_grads | Layer.Linear_grads _ | Layer.Conv_grads _), _ ->
        invalid_arg "Trainer: inconsistent gradient shapes")
    acc

let scale_grads s g =
  Array.map
    (function
      | Layer.No_grads -> Layer.No_grads
      | Layer.Linear_grads a ->
        Layer.Linear_grads
          { d_weight = Abonn_tensor.Matrix.scale s a.d_weight;
            d_bias = Array.map (fun v -> s *. v) a.d_bias }
      | Layer.Conv_grads a ->
        Layer.Conv_grads
          { Conv.d_weight = Array.map (fun v -> s *. v) a.Conv.d_weight;
            d_bias = Array.map (fun v -> s *. v) a.Conv.d_bias })
    g

let train ?(config = default_config) rng net samples =
  if Array.length samples = 0 then invalid_arg "Trainer.train: no samples";
  let order = Array.init (Array.length samples) (fun i -> i) in
  let net = ref net in
  let lr = ref config.learning_rate in
  for epoch = 1 to config.epochs do
    Abonn_util.Rng.shuffle rng order;
    let i = ref 0 in
    let n = Array.length order in
    while !i < n do
      let batch_end = Stdlib.min n (!i + config.batch_size) in
      let batch_n = batch_end - !i in
      let acc = ref None in
      for k = !i to batch_end - 1 do
        let s = samples.(order.(k)) in
        let logits = Network.forward !net s.features in
        let _, d_out = cross_entropy_grad logits s.label in
        let _, grads = Network.backprop !net s.features ~d_out in
        acc := Some (match !acc with None -> grads | Some a -> add_grads a grads)
      done;
      begin match !acc with
      | None -> ()
      | Some g ->
        let g = scale_grads (1.0 /. float_of_int batch_n) g in
        net := Network.apply_grads !net g ~lr:!lr
      end;
      i := batch_end
    done;
    lr := !lr *. config.lr_decay;
    if config.verbose then
      Printf.printf "epoch %d: loss=%.4f acc=%.3f\n%!" epoch
        (let total = ref 0.0 in
         Array.iter
           (fun s ->
             let logits = Network.forward !net s.features in
             let loss, _ = cross_entropy_grad logits s.label in
             total := !total +. loss)
           samples;
         !total /. float_of_int (Array.length samples))
        (let correct = ref 0 in
         Array.iter (fun s -> if Network.predict !net s.features = s.label then incr correct) samples;
         float_of_int !correct /. float_of_int (Array.length samples))
  done;
  !net

let accuracy net samples =
  if Array.length samples = 0 then 0.0
  else begin
    let correct = ref 0 in
    Array.iter (fun s -> if Network.predict net s.features = s.label then incr correct) samples;
    float_of_int !correct /. float_of_int (Array.length samples)
  end

let average_loss net samples =
  if Array.length samples = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun s ->
        let logits = Network.forward net s.features in
        let loss, _ = cross_entropy_grad logits s.label in
        total := !total +. loss)
      samples;
    !total /. float_of_int (Array.length samples)
  end
