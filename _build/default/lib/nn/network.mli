(** Feed-forward networks: a validated sequence of layers.

    Networks support concrete evaluation, full activation traces (used by
    tests and by the ReLU-stability analysis) and reverse-mode gradients
    (used by the trainer and the adversarial attacks). *)

type t = private {
  layers : Layer.t array;
  input_dim : int;
  output_dim : int;
}

val create : Layer.t list -> t
(** Validates that consecutive layer dimensions match.  Raises
    [Invalid_argument] on an empty list or a dimension mismatch. *)

val layers : t -> Layer.t list
val input_dim : t -> int
val output_dim : t -> int

val forward : t -> float array -> float array
(** [forward net x] evaluates the network on a concrete input. *)

val trace : t -> float array -> float array array
(** [trace net x] returns the value entering each layer plus the final
    output: [trace net x] has [Array.length net.layers + 1] entries, with
    entry [0 = x] and the last entry [= forward net x]. *)

val num_params : t -> int

val num_relus : t -> int
(** Total number of ReLU units (the [K] of Def. 1). *)

val num_neurons : t -> int
(** Total width of all hidden + output layers (paper Table I counts). *)

val input_gradient : t -> float array -> d_out:float array -> float array
(** Gradient of [d_out · output] w.r.t. the input (for FGSM/PGD). *)

type step_grads = Layer.grads array

val backprop : t -> float array -> d_out:float array -> float array * step_grads
(** Input gradient together with per-layer parameter gradients. *)

val apply_grads : t -> step_grads -> lr:float -> t
(** One SGD step over every layer. *)

val predict : t -> float array -> int
(** Argmax output label. *)
