lib/nn/layer.ml: Abonn_tensor Array Conv Float Printf
