lib/nn/trainer.ml: Abonn_tensor Abonn_util Array Conv Float Layer Network Printf Stdlib
