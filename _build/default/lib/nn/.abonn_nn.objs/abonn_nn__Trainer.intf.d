lib/nn/trainer.mli: Abonn_util Network
