lib/nn/affine.mli: Abonn_tensor Network
