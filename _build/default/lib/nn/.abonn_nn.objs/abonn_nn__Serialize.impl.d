lib/nn/serialize.ml: Abonn_tensor Array Buffer Conv Fun Layer List Network Printf String
