lib/nn/conv.ml: Abonn_tensor Abonn_util Array
