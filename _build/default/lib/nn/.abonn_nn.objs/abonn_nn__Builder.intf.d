lib/nn/builder.mli: Abonn_util Network
