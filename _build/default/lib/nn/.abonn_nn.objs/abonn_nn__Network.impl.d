lib/nn/network.ml: Abonn_tensor Array Layer Printf
