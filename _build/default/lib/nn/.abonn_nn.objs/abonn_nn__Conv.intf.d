lib/nn/conv.mli: Abonn_tensor Abonn_util
