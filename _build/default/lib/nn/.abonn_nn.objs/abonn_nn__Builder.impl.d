lib/nn/builder.ml: Conv Layer List Network
