lib/nn/affine.ml: Abonn_tensor Array Conv Float Layer List Network Stdlib
