lib/nn/layer.mli: Abonn_tensor Abonn_util Conv
