(** Canonical affine–ReLU form of a network.

    Every verifier in this repository (interval propagation, DeepPoly-style
    back-substitution, the LP encoding) analyses networks in the shape

      input → W₀x+b₀ → ReLU → W₁x+b₁ → ReLU → … → W_{L-1}x+b_{L-1} → output

    [of_network] compiles an arbitrary [Network.t] into this form by
    materialising convolutions as dense matrices and fusing consecutive
    affine layers.  ReLU units carry a global index [0 .. num_relus - 1]
    (layer-major) used by BaB split constraints; this is the [K] neuron
    count of the paper's Def. 1. *)

type t = private {
  weights : Abonn_tensor.Matrix.t array;  (** [L] weight matrices *)
  biases : float array array;             (** [L] bias vectors *)
  input_dim : int;
  output_dim : int;
  relu_offsets : int array;
      (** [L-1] entries: global index of the first ReLU of hidden layer
          [l] (all hidden layers are followed by a ReLU). *)
  num_relus : int;
}

val of_network : Network.t -> t
(** Compile; raises [Invalid_argument] if the network does not end in an
    affine layer, starts with a ReLU, or has adjacent ReLUs. *)

val of_weights : (Abonn_tensor.Matrix.t * float array) list -> t
(** Build directly from a list of affine layers (ReLUs are implicit
    between consecutive entries).  Used in tests and tiny examples. *)

val num_layers : t -> int
(** Number of affine layers [L]. *)

val layer_width : t -> int -> int
(** [layer_width t l] is the width of pre-activation layer [l]. *)

val forward : t -> float array -> float array

val pre_activations : t -> float array -> float array array
(** [L] pre-activation vectors [ẑ₀ … ẑ_{L-1}] (the last one is the
    output). *)

val relu_position : t -> int -> int * int
(** [relu_position t k] maps a global ReLU index to [(layer, index)]
    where [layer] is the hidden layer (0-based).  Raises
    [Invalid_argument] when out of range. *)

val relu_index : t -> layer:int -> idx:int -> int
(** Inverse of [relu_position]. *)
