(** Network layers.

    A network is a sequence of layers applied left to right to a flat
    float vector.  [Linear] and [Conv2d] are affine; [Relu] is the only
    non-linearity (following the paper, §III). *)

type t =
  | Linear of { weight : Abonn_tensor.Matrix.t; bias : float array }
      (** [y = W x + b] *)
  | Conv2d of Conv.t
  | Relu of int  (** element-wise [max 0] on a vector of the given width *)

val input_dim : t -> int
val output_dim : t -> int

val forward : t -> float array -> float array
(** Concrete evaluation; checks the input dimension. *)

val is_affine : t -> bool

val linear : Abonn_tensor.Matrix.t -> float array -> t
(** Checked constructor: bias length must equal the matrix row count. *)

val random_linear : Abonn_util.Rng.t -> in_dim:int -> out_dim:int -> t
(** He-initialised dense layer with zero bias. *)

val num_params : t -> int

type grads =
  | Linear_grads of { d_weight : Abonn_tensor.Matrix.t; d_bias : float array }
  | Conv_grads of Conv.grads
  | No_grads

val backward : t -> input:float array -> d_out:float array -> float array * grads
(** [backward layer ~input ~d_out] propagates the output gradient to the
    input and collects parameter gradients.  For [Relu], [input] must be
    the pre-activation vector. *)

val apply_grads : t -> grads -> lr:float -> t
(** One SGD step; [No_grads] and mismatched constructors are rejected
    with [Invalid_argument]. *)
