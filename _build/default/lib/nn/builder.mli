(** Convenience constructors for the network shapes used in the paper.

    Table I architectures: MNIST models are stacks of equal-width linear
    layers; CIFAR-10 models are 2–4 convolutions followed by 2 linear
    layers.  The builders produce He-initialised untrained networks;
    [Abonn_data.Models] trains them. *)

val mlp : Abonn_util.Rng.t -> dims:int list -> Network.t
(** [mlp rng ~dims:[in; h1; …; out]] builds Linear/ReLU/…/Linear.
    Needs at least two entries. *)

type conv_spec = {
  out_channels : int;
  kernel : int;
  stride : int;
  padding : int;
}

val convnet :
  Abonn_util.Rng.t ->
  in_channels:int ->
  in_h:int ->
  in_w:int ->
  convs:conv_spec list ->
  dense:int list ->
  num_classes:int ->
  Network.t
(** Convolutional tower followed by dense head.  [dense] lists the hidden
    dense widths (may be empty); a final linear layer maps to
    [num_classes].  ReLU after every conv and every hidden dense layer. *)
