(** Mini-batch SGD training with softmax cross-entropy.

    The repository trains its own benchmark models (DESIGN.md §4): the
    paper's MNIST/CIFAR-10 weights are not available offline, so synthetic
    datasets from [Abonn_data.Synth] are fitted with this trainer to obtain
    realistic, non-random weight structure for verification. *)

type sample = { features : float array; label : int }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  lr_decay : float;  (** multiplicative per-epoch decay *)
  verbose : bool;
}

val default_config : config

val softmax : float array -> float array
(** Numerically stable softmax. *)

val cross_entropy_grad : float array -> int -> float * float array
(** [cross_entropy_grad logits label] is the loss and its gradient w.r.t.
    the logits. *)

val train :
  ?config:config ->
  Abonn_util.Rng.t ->
  Network.t ->
  sample array ->
  Network.t
(** Train (functionally: returns the updated network). *)

val accuracy : Network.t -> sample array -> float
(** Fraction of samples classified correctly. *)

val average_loss : Network.t -> sample array -> float
