module Matrix = Abonn_tensor.Matrix

let floats_to_line arr =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") arr))

let floats_of_line line =
  line |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match float_of_string_opt s with
         | Some f -> f
         | None -> failwith (Printf.sprintf "Serialize: bad float %S" s))
  |> Array.of_list

let to_string net =
  let buf = Buffer.create 4096 in
  let layers = Network.layers net in
  Buffer.add_string buf (Printf.sprintf "abonn-network 1 %d\n" (List.length layers));
  List.iter
    (fun layer ->
      match layer with
      | Layer.Relu n -> Buffer.add_string buf (Printf.sprintf "relu %d\n" n)
      | Layer.Linear { weight; bias } ->
        Buffer.add_string buf (Printf.sprintf "linear %d %d\n" weight.Matrix.rows weight.Matrix.cols);
        Buffer.add_string buf (floats_to_line weight.Matrix.data);
        Buffer.add_char buf '\n';
        Buffer.add_string buf (floats_to_line bias);
        Buffer.add_char buf '\n'
      | Layer.Conv2d c ->
        Buffer.add_string buf
          (Printf.sprintf "conv %d %d %d %d %d %d %d %d\n" c.Conv.in_channels c.Conv.in_h
             c.Conv.in_w c.Conv.out_channels c.Conv.kernel_h c.Conv.kernel_w c.Conv.stride
             c.Conv.padding);
        Buffer.add_string buf (floats_to_line c.Conv.weight);
        Buffer.add_char buf '\n';
        Buffer.add_string buf (floats_to_line c.Conv.bias);
        Buffer.add_char buf '\n')
    layers;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | [] -> failwith "Serialize: empty input"
  | header :: rest ->
    let nlayers =
      match String.split_on_char ' ' header with
      | [ "abonn-network"; "1"; n ] ->
        (match int_of_string_opt n with
         | Some n -> n
         | None -> failwith "Serialize: bad layer count")
      | _ -> failwith "Serialize: bad header"
    in
    let rec parse lines acc count =
      if count = nlayers then begin
        if lines <> [] then failwith "Serialize: trailing data";
        List.rev acc
      end
      else
        match lines with
        | [] -> failwith "Serialize: truncated input"
        | decl :: rest ->
          begin match String.split_on_char ' ' decl with
          | [ "relu"; n ] ->
            let n =
              match int_of_string_opt n with
              | Some n -> n
              | None -> failwith "Serialize: bad relu width"
            in
            parse rest (Layer.Relu n :: acc) (count + 1)
          | [ "linear"; rows; cols ] ->
            let rows = int_of_string rows and cols = int_of_string cols in
            begin match rest with
            | wline :: bline :: rest ->
              let data = floats_of_line wline in
              if Array.length data <> rows * cols then failwith "Serialize: bad linear weights";
              let weight = Matrix.init rows cols (fun i j -> data.((i * cols) + j)) in
              let bias = floats_of_line bline in
              if Array.length bias <> rows then failwith "Serialize: bad linear bias";
              parse rest (Layer.linear weight bias :: acc) (count + 1)
            | [ _ ] | [] -> failwith "Serialize: truncated linear layer"
            end
          | [ "conv"; ic; ih; iw; oc; kh; kw; st; pd ] ->
            begin match rest with
            | wline :: bline :: rest ->
              let conv =
                { Conv.in_channels = int_of_string ic;
                  in_h = int_of_string ih;
                  in_w = int_of_string iw;
                  out_channels = int_of_string oc;
                  kernel_h = int_of_string kh;
                  kernel_w = int_of_string kw;
                  stride = int_of_string st;
                  padding = int_of_string pd;
                  weight = floats_of_line wline;
                  bias = floats_of_line bline }
              in
              let expected =
                conv.Conv.out_channels * conv.Conv.in_channels * conv.Conv.kernel_h
                * conv.Conv.kernel_w
              in
              if Array.length conv.Conv.weight <> expected then
                failwith "Serialize: bad conv weights";
              if Array.length conv.Conv.bias <> conv.Conv.out_channels then
                failwith "Serialize: bad conv bias";
              parse rest (Layer.Conv2d conv :: acc) (count + 1)
            | [ _ ] | [] -> failwith "Serialize: truncated conv layer"
            end
          | _ -> failwith (Printf.sprintf "Serialize: bad layer declaration %S" decl)
          end
    in
    Network.create (parse rest [] 0)

let save net path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)
