(** Plain-text network (de)serialisation.

    A self-describing line-oriented format so trained benchmark models can
    be cached on disk and inspected by hand.  Round-trips exactly (floats
    are printed with ["%h"] hexadecimal notation). *)

val to_string : Network.t -> string
val of_string : string -> Network.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val save : Network.t -> string -> unit
(** [save net path] writes [to_string net] to [path]. *)

val load : string -> Network.t
(** Raises [Sys_error] if the file is missing, [Failure] if malformed. *)
