module Matrix = Abonn_tensor.Matrix

type t =
  | Linear of { weight : Matrix.t; bias : float array }
  | Conv2d of Conv.t
  | Relu of int

let input_dim = function
  | Linear { weight; _ } -> weight.Matrix.cols
  | Conv2d c -> Conv.input_dim c
  | Relu n -> n

let output_dim = function
  | Linear { weight; _ } -> weight.Matrix.rows
  | Conv2d c -> Conv.output_dim c
  | Relu n -> n

let forward layer x =
  if Array.length x <> input_dim layer then
    invalid_arg
      (Printf.sprintf "Layer.forward: expected input of size %d, got %d" (input_dim layer)
         (Array.length x));
  match layer with
  | Linear { weight; bias } ->
    let y = Matrix.mv weight x in
    Array.mapi (fun i yi -> yi +. bias.(i)) y
  | Conv2d c -> Conv.forward c x
  | Relu _ -> Array.map (fun v -> Float.max 0.0 v) x

let is_affine = function Linear _ | Conv2d _ -> true | Relu _ -> false

let linear weight bias =
  if Array.length bias <> weight.Matrix.rows then
    invalid_arg "Layer.linear: bias length must equal row count";
  Linear { weight; bias }

let random_linear rng ~in_dim ~out_dim =
  let stddev = sqrt (2.0 /. float_of_int in_dim) in
  let weight = Matrix.random_gaussian rng out_dim in_dim ~stddev in
  Linear { weight; bias = Array.make out_dim 0.0 }

let num_params = function
  | Linear { weight; bias } -> (weight.Matrix.rows * weight.Matrix.cols) + Array.length bias
  | Conv2d c -> Array.length c.Conv.weight + Array.length c.Conv.bias
  | Relu _ -> 0

type grads =
  | Linear_grads of { d_weight : Matrix.t; d_bias : float array }
  | Conv_grads of Conv.grads
  | No_grads

let backward layer ~input ~d_out =
  match layer with
  | Linear { weight; _ } ->
    let d_in = Matrix.tmv weight d_out in
    let d_weight = Matrix.outer d_out input in
    (d_in, Linear_grads { d_weight; d_bias = Array.copy d_out })
  | Conv2d c ->
    let d_in, g = Conv.backward c ~input ~d_out in
    (d_in, Conv_grads g)
  | Relu _ ->
    let d_in = Array.mapi (fun i g -> if input.(i) > 0.0 then g else 0.0) d_out in
    (d_in, No_grads)

let apply_grads layer grads ~lr =
  match layer, grads with
  | Linear { weight; bias }, Linear_grads g ->
    let weight = Matrix.sub weight (Matrix.scale lr g.d_weight) in
    let bias = Array.mapi (fun i b -> b -. (lr *. g.d_bias.(i))) bias in
    Linear { weight; bias }
  | Conv2d c, Conv_grads g -> Conv2d (Conv.apply_grads c g ~lr)
  | Relu n, No_grads -> Relu n
  | (Linear _ | Conv2d _ | Relu _), _ ->
    invalid_arg "Layer.apply_grads: gradient does not match layer"
