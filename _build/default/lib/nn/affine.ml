module Matrix = Abonn_tensor.Matrix

type t = {
  weights : Matrix.t array;
  biases : float array array;
  input_dim : int;
  output_dim : int;
  relu_offsets : int array;
  num_relus : int;
}

let layer_as_affine = function
  | Layer.Linear { weight; bias } -> Some (weight, Array.copy bias)
  | Layer.Conv2d c -> Some (Conv.to_matrix c)
  | Layer.Relu _ -> None

(* Compose g after f: (w2, b2) ∘ (w1, b1) = (w2 w1, w2 b1 + b2). *)
let compose (w1, b1) (w2, b2) =
  let w = Matrix.matmul w2 w1 in
  let b = Matrix.mv w2 b1 in
  let b = Array.mapi (fun i v -> v +. b2.(i)) b in
  (w, b)

let of_pairs pairs =
  match pairs with
  | [] -> invalid_arg "Affine.of_pairs: no affine layers"
  | (w0, _) :: _ ->
    let arr = Array.of_list pairs in
    let n = Array.length arr in
    let weights = Array.map fst arr in
    let biases = Array.map snd arr in
    let relu_offsets = Array.make (Stdlib.max 0 (n - 1)) 0 in
    let acc = ref 0 in
    for l = 0 to n - 2 do
      relu_offsets.(l) <- !acc;
      acc := !acc + weights.(l).Matrix.rows
    done;
    { weights;
      biases;
      input_dim = w0.Matrix.cols;
      output_dim = weights.(n - 1).Matrix.rows;
      relu_offsets;
      num_relus = !acc }

let of_weights pairs =
  List.iter
    (fun ((w : Matrix.t), b) ->
      if Array.length b <> w.Matrix.rows then
        invalid_arg "Affine.of_weights: bias length must equal row count")
    pairs;
  of_pairs pairs

let of_network net =
  (* Walk the layers, fusing runs of affine layers; ReLUs separate runs. *)
  let rec walk layers current acc =
    match layers with
    | [] ->
      begin match current with
      | Some pair -> List.rev (pair :: acc)
      | None -> invalid_arg "Affine.of_network: network must end in an affine layer"
      end
    | layer :: rest ->
      begin match layer_as_affine layer, current with
      | Some pair, None -> walk rest (Some pair) acc
      | Some pair, Some prev -> walk rest (Some (compose prev pair)) acc
      | None, Some prev -> walk rest None (prev :: acc)
      | None, None ->
        invalid_arg "Affine.of_network: ReLU at the start or two adjacent ReLUs"
      end
  in
  of_pairs (walk (Network.layers net) None [])

let num_layers t = Array.length t.weights

let layer_width t l = t.weights.(l).Matrix.rows

let forward t x =
  let n = num_layers t in
  let cur = ref x in
  for l = 0 to n - 1 do
    let z = Matrix.mv t.weights.(l) !cur in
    let z = Array.mapi (fun i v -> v +. t.biases.(l).(i)) z in
    cur := if l < n - 1 then Array.map (fun v -> Float.max 0.0 v) z else z
  done;
  !cur

let pre_activations t x =
  let n = num_layers t in
  let out = Array.make n [||] in
  let cur = ref x in
  for l = 0 to n - 1 do
    let z = Matrix.mv t.weights.(l) !cur in
    let z = Array.mapi (fun i v -> v +. t.biases.(l).(i)) z in
    out.(l) <- z;
    if l < n - 1 then cur := Array.map (fun v -> Float.max 0.0 v) z
  done;
  out

let relu_position t k =
  if k < 0 || k >= t.num_relus then invalid_arg "Affine.relu_position: out of range";
  let n_hidden = Array.length t.relu_offsets in
  let rec find l =
    if l = n_hidden - 1 || t.relu_offsets.(l + 1) > k then (l, k - t.relu_offsets.(l))
    else find (l + 1)
  in
  find 0

let relu_index t ~layer ~idx =
  if layer < 0 || layer >= Array.length t.relu_offsets then
    invalid_arg "Affine.relu_index: bad layer";
  if idx < 0 || idx >= layer_width t layer then invalid_arg "Affine.relu_index: bad idx";
  t.relu_offsets.(layer) + idx
