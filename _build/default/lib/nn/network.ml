type t = { layers : Layer.t array; input_dim : int; output_dim : int }

let create layer_list =
  match layer_list with
  | [] -> invalid_arg "Network.create: empty layer list"
  | first :: _ ->
    let layers = Array.of_list layer_list in
    let n = Array.length layers in
    for i = 0 to n - 2 do
      let out_i = Layer.output_dim layers.(i) in
      let in_next = Layer.input_dim layers.(i + 1) in
      if out_i <> in_next then
        invalid_arg
          (Printf.sprintf "Network.create: layer %d outputs %d but layer %d expects %d" i out_i
             (i + 1) in_next)
    done;
    { layers;
      input_dim = Layer.input_dim first;
      output_dim = Layer.output_dim layers.(n - 1) }

let layers net = Array.to_list net.layers

let input_dim net = net.input_dim

let output_dim net = net.output_dim

let forward net x = Array.fold_left (fun acc layer -> Layer.forward layer acc) x net.layers

let trace net x =
  let n = Array.length net.layers in
  let values = Array.make (n + 1) x in
  for i = 0 to n - 1 do
    values.(i + 1) <- Layer.forward net.layers.(i) values.(i)
  done;
  values

let num_params net = Array.fold_left (fun acc l -> acc + Layer.num_params l) 0 net.layers

let num_relus net =
  Array.fold_left
    (fun acc layer -> match layer with Layer.Relu n -> acc + n | Layer.Linear _ | Layer.Conv2d _ -> acc)
    0 net.layers

let num_neurons net =
  Array.fold_left
    (fun acc layer ->
      match layer with
      | Layer.Linear _ | Layer.Conv2d _ -> acc + Layer.output_dim layer
      | Layer.Relu _ -> acc)
    0 net.layers

type step_grads = Layer.grads array

let backprop net x ~d_out =
  let values = trace net x in
  let n = Array.length net.layers in
  if Array.length d_out <> net.output_dim then invalid_arg "Network.backprop: wrong d_out size";
  let grads = Array.make n Layer.No_grads in
  let rec loop i g =
    if i < 0 then g
    else begin
      let d_in, layer_grads = Layer.backward net.layers.(i) ~input:values.(i) ~d_out:g in
      grads.(i) <- layer_grads;
      loop (i - 1) d_in
    end
  in
  let d_input = loop (n - 1) d_out in
  (d_input, grads)

let input_gradient net x ~d_out = fst (backprop net x ~d_out)

let apply_grads net grads ~lr =
  if Array.length grads <> Array.length net.layers then
    invalid_arg "Network.apply_grads: wrong number of gradients";
  { net with layers = Array.mapi (fun i l -> Layer.apply_grads l grads.(i) ~lr) net.layers }

let predict net x =
  let y = forward net x in
  Abonn_tensor.Vector.argmax y
