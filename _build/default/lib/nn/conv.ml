type t = {
  in_channels : int;
  in_h : int;
  in_w : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
  weight : float array;
  bias : float array;
}

let out_h c = ((c.in_h + (2 * c.padding) - c.kernel_h) / c.stride) + 1

let out_w c = ((c.in_w + (2 * c.padding) - c.kernel_w) / c.stride) + 1

let input_dim c = c.in_channels * c.in_h * c.in_w

let output_dim c = c.out_channels * out_h c * out_w c

let weight_index c ~oc ~ic ~ky ~kx =
  (((((oc * c.in_channels) + ic) * c.kernel_h) + ky) * c.kernel_w) + kx

let in_index c ~ic ~y ~x = (((ic * c.in_h) + y) * c.in_w) + x

let out_index c ~oc ~y ~x = (((oc * out_h c) + y) * out_w c) + x

let create rng ~in_channels ~in_h ~in_w ~out_channels ~kernel ~stride ~padding =
  if kernel <= 0 || stride <= 0 || padding < 0 then invalid_arg "Conv.create: bad geometry";
  let fan_in = in_channels * kernel * kernel in
  let stddev = sqrt (2.0 /. float_of_int fan_in) in
  let nw = out_channels * in_channels * kernel * kernel in
  let weight = Array.init nw (fun _ -> stddev *. Abonn_util.Rng.gaussian rng) in
  let bias = Array.make out_channels 0.0 in
  let c =
    { in_channels; in_h; in_w; out_channels; kernel_h = kernel; kernel_w = kernel;
      stride; padding; weight; bias }
  in
  if out_h c <= 0 || out_w c <= 0 then invalid_arg "Conv.create: empty output";
  c

(* Iterate over the valid (input y, input x) cells touched by kernel
   position (ky, kx) for output pixel (oy, ox); padding cells contribute
   nothing because the padded value is zero. *)
let forward c x =
  if Array.length x <> input_dim c then invalid_arg "Conv.forward: wrong input size";
  let oh = out_h c and ow = out_w c in
  let y = Array.make (output_dim c) 0.0 in
  for oc = 0 to c.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref c.bias.(oc) in
        for ic = 0 to c.in_channels - 1 do
          for ky = 0 to c.kernel_h - 1 do
            let iy = (oy * c.stride) + ky - c.padding in
            if iy >= 0 && iy < c.in_h then
              for kx = 0 to c.kernel_w - 1 do
                let ix = (ox * c.stride) + kx - c.padding in
                if ix >= 0 && ix < c.in_w then
                  acc :=
                    !acc
                    +. (c.weight.(weight_index c ~oc ~ic ~ky ~kx)
                        *. x.(in_index c ~ic ~y:iy ~x:ix))
              done
          done
        done;
        y.(out_index c ~oc ~y:oy ~x:ox) <- !acc
      done
    done
  done;
  y

type grads = { d_weight : float array; d_bias : float array }

let backward c ~input ~d_out =
  if Array.length input <> input_dim c then invalid_arg "Conv.backward: wrong input size";
  if Array.length d_out <> output_dim c then invalid_arg "Conv.backward: wrong d_out size";
  let oh = out_h c and ow = out_w c in
  let d_in = Array.make (input_dim c) 0.0 in
  let d_weight = Array.make (Array.length c.weight) 0.0 in
  let d_bias = Array.make c.out_channels 0.0 in
  for oc = 0 to c.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let g = d_out.(out_index c ~oc ~y:oy ~x:ox) in
        if g <> 0.0 then begin
          d_bias.(oc) <- d_bias.(oc) +. g;
          for ic = 0 to c.in_channels - 1 do
            for ky = 0 to c.kernel_h - 1 do
              let iy = (oy * c.stride) + ky - c.padding in
              if iy >= 0 && iy < c.in_h then
                for kx = 0 to c.kernel_w - 1 do
                  let ix = (ox * c.stride) + kx - c.padding in
                  if ix >= 0 && ix < c.in_w then begin
                    let wi = weight_index c ~oc ~ic ~ky ~kx in
                    let ii = in_index c ~ic ~y:iy ~x:ix in
                    d_weight.(wi) <- d_weight.(wi) +. (g *. input.(ii));
                    d_in.(ii) <- d_in.(ii) +. (g *. c.weight.(wi))
                  end
                done
            done
          done
        end
      done
    done
  done;
  (d_in, { d_weight; d_bias })

let apply_grads c g ~lr =
  { c with
    weight = Array.mapi (fun k w -> w -. (lr *. g.d_weight.(k))) c.weight;
    bias = Array.mapi (fun k b -> b -. (lr *. g.d_bias.(k))) c.bias }

let to_matrix c =
  let oh = out_h c and ow = out_w c in
  let m = Abonn_tensor.Matrix.zeros (output_dim c) (input_dim c) in
  let b = Array.make (output_dim c) 0.0 in
  for oc = 0 to c.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let r = out_index c ~oc ~y:oy ~x:ox in
        b.(r) <- c.bias.(oc);
        for ic = 0 to c.in_channels - 1 do
          for ky = 0 to c.kernel_h - 1 do
            let iy = (oy * c.stride) + ky - c.padding in
            if iy >= 0 && iy < c.in_h then
              for kx = 0 to c.kernel_w - 1 do
                let ix = (ox * c.stride) + kx - c.padding in
                if ix >= 0 && ix < c.in_w then
                  Abonn_tensor.Matrix.set m r
                    (in_index c ~ic ~y:iy ~x:ix)
                    (c.weight.(weight_index c ~oc ~ic ~ky ~kx))
              done
          done
        done
      done
    done
  done;
  (m, b)
