lib/attack/attack.mli: Abonn_spec Abonn_util
