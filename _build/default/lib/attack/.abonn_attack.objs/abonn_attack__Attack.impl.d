lib/attack/attack.ml: Abonn_nn Abonn_spec Abonn_tensor Abonn_util Array List
