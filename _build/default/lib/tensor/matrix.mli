(** Dense row-major float matrices.

    This is the workhorse of both concrete network evaluation and symbolic
    bound propagation (where a matrix row is a linear functional over an
    earlier layer).  Dimensions are checked on every operation. *)

type t = private {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> float -> t
val zeros : int -> int -> t
val identity : int -> t
val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** Rows must be non-empty and rectangular. *)

val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> float array
(** Fresh copy of row [i]. *)

val col : t -> int -> float array
(** Fresh copy of column [j]. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t

val matmul : t -> t -> t
(** [matmul a b] with [a.cols = b.rows]. *)

val mv : t -> float array -> float array
(** Matrix–vector product. *)

val tmv : t -> float array -> float array
(** Transposed matrix–vector product: [tmv a x = aᵀ x]. *)

val outer : float array -> float array -> t
(** Rank-one outer product. *)

val random_gaussian : Abonn_util.Rng.t -> int -> int -> stddev:float -> t
(** Matrix of independent N(0, stddev²) entries. *)

val frobenius : t -> float
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
