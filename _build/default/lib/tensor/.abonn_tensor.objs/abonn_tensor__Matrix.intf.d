lib/tensor/matrix.mli: Abonn_util Format
