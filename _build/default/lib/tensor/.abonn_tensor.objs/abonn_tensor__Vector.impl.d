lib/tensor/vector.ml: Array Float Format Printf
