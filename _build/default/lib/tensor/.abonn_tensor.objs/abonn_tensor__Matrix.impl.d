lib/tensor/matrix.ml: Abonn_util Array Float Format Printf
