(** Result of one approximate-verifier ([AppVer]) invocation (§III).

    [phat] is the certified lower bound of the property margin over the
    (split-constrained) sub-problem: positive means *proved*; negative
    means the relaxation admits a violation, in which case [candidate]
    holds the input the relaxation considers most violating (to be
    validated concretely).  [infeasible] sub-problems — where split
    constraints contradict the certified bounds — are vacuously proved
    and report [phat = +∞]. *)

type t = {
  phat : float;
  candidate : float array option;
  pre_bounds : Bounds.t array;
      (** bounds of every hidden pre-activation layer, with split
          constraints folded in; empty when infeasibility was detected
          before all layers were bounded *)
  infeasible : bool;
  row_lower : float array;
      (** certified lower bound per property row; [phat] is their min *)
}

val proved : t -> bool
(** [phat > 0] (infeasible included). *)

val make :
  phat:float ->
  ?candidate:float array ->
  ?pre_bounds:Bounds.t array ->
  ?infeasible:bool ->
  ?row_lower:float array ->
  unit ->
  t

val vacuous : pre_bounds:Bounds.t array -> t
(** Outcome of an infeasible sub-problem. *)
