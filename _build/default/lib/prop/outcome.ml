type t = {
  phat : float;
  candidate : float array option;
  pre_bounds : Bounds.t array;
  infeasible : bool;
  row_lower : float array;
}

let proved t = t.phat > 0.0

let make ~phat ?candidate ?(pre_bounds = [||]) ?(infeasible = false) ?(row_lower = [||]) () =
  { phat; candidate; pre_bounds; infeasible; row_lower }

let vacuous ~pre_bounds =
  { phat = infinity; candidate = None; pre_bounds; infeasible = true; row_lower = [||] }
