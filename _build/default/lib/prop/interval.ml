module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Split = Abonn_spec.Split
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

let affine_interval w b ~lo ~hi = Bounds.affine_image w b ~lo ~hi

let splits_for_layer affine gamma l =
  List.filter_map
    (fun (c : Split.constr) ->
      let layer, idx = Affine.relu_position affine c.Split.relu in
      if layer = l then Some (idx, c.Split.phase) else None)
    gamma

let compute_hidden_bounds (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let n_hidden = Affine.num_layers affine - 1 in
  let pre_bounds = Array.make n_hidden (Bounds.create ~lower:[||] ~upper:[||]) in
  let rec loop l lo hi =
    if l >= n_hidden then Ok (pre_bounds, lo, hi)
    else begin
      let zlo, zhi = affine_interval Affine.(affine.weights.(l)) Affine.(affine.biases.(l)) ~lo ~hi in
      let b = Bounds.create ~lower:zlo ~upper:zhi in
      let b =
        List.fold_left
          (fun b (idx, phase) -> Bounds.apply_split b ~idx ~phase)
          b (splits_for_layer affine gamma l)
      in
      if Bounds.is_infeasible b then Error (Array.sub pre_bounds 0 l)
      else begin
        pre_bounds.(l) <- b;
        let post_lo = Array.map (fun v -> Float.max 0.0 v) b.Bounds.lower in
        let post_hi = Array.map (fun v -> Float.max 0.0 v) b.Bounds.upper in
        loop (l + 1) post_lo post_hi
      end
    end
  in
  loop 0 (Array.copy region.Region.lower) (Array.copy region.Region.upper)

let run (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let prop = problem.Problem.property in
  match compute_hidden_bounds problem gamma with
  | Error partial -> Outcome.vacuous ~pre_bounds:partial
  | Ok (pre_bounds, lo, hi) ->
    let last = Affine.num_layers affine - 1 in
    let ylo, yhi = affine_interval Affine.(affine.weights.(last)) Affine.(affine.biases.(last)) ~lo ~hi in
    (* Lower-bound each property row c·y + d over the output box. *)
    let m = prop.Property.c.Matrix.rows in
    let row_lower =
      Array.init m (fun i ->
          let acc = ref prop.Property.d.(i) in
          for j = 0 to Array.length ylo - 1 do
            let a = Matrix.get prop.Property.c i j in
            acc := !acc +. (if a > 0.0 then a *. ylo.(j) else a *. yhi.(j))
          done;
          !acc)
    in
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate =
      if phat > 0.0 then None
      else begin
        (* First-order candidate: gradient of the worst row at the box
           centre, descended to the corresponding corner. *)
        let worst = ref 0 in
        Array.iteri (fun i v -> if v < row_lower.(!worst) then worst := i) row_lower;
        let d_out = Matrix.row prop.Property.c !worst in
        let centre = Region.center region in
        let g =
          Abonn_nn.Network.input_gradient problem.Problem.network centre ~d_out
        in
        Some
          (Array.mapi
             (fun j gj -> if gj > 0.0 then region.Region.lower.(j) else region.Region.upper.(j))
             g)
      end
    in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

let hidden_bounds problem gamma =
  match compute_hidden_bounds problem gamma with
  | Ok (b, _, _) -> Some b
  | Error _ -> None
