(** Per-layer concrete bounds on pre-activations.

    A [t] holds element-wise lower/upper bounds for one layer's
    pre-activation vector ẑ.  Split constraints are *folded into* these
    bounds by [apply_split]: an [Active] split clamps the lower bound to
    0, an [Inactive] split clamps the upper bound to 0.  A clamp that
    empties an interval witnesses an infeasible sub-problem. *)

type t = {
  lower : float array;
  upper : float array;
}

val create : lower:float array -> upper:float array -> t
(** Copies its arguments; checks equal lengths (but *not* [lower <=
    upper]: infeasible bounds are representable on purpose). *)

val dim : t -> int

val is_infeasible : t -> bool
(** Some [lower.(i) > upper.(i)] (with 1e-12 slack). *)

val apply_split : t -> idx:int -> phase:Abonn_spec.Split.phase -> t
(** Clamp one neuron according to a split constraint. *)

type relu_state = Stable_active | Stable_inactive | Unstable

val relu_state_of : t -> int -> relu_state
(** Phase of neuron [i] implied by its bounds. *)

val unstable_indices : t -> int list
(** Neurons with [lower < 0 < upper]. *)

val num_unstable : t -> int

val width : t -> int -> float
(** [upper - lower] of one neuron. *)

val copy : t -> t

val affine_image :
  Abonn_tensor.Matrix.t -> float array -> lo:float array -> hi:float array ->
  float array * float array
(** Interval image [(lo', hi')] of an affine map [x ↦ Wx + b] over the
    input box [\[lo, hi\]] — the forward-interval step shared by every
    propagation domain. *)

val intersect : t -> lo:float array -> hi:float array -> t
(** Per-neuron intersection with another sound interval (tighter of the
    two on each side). *)
