type t = {
  name : string;
  run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t;
}

let deeppoly = { name = "deeppoly"; run = Deeppoly.run ~slope:Deeppoly.Adaptive }

let deeppoly_zero = { name = "deeppoly-zero"; run = Deeppoly.run ~slope:Deeppoly.Always_zero }

let deeppoly_one = { name = "deeppoly-one"; run = Deeppoly.run ~slope:Deeppoly.Always_one }

let interval = { name = "interval"; run = Interval.run }

let zonotope = { name = "zonotope"; run = Zonotope.run }

let symbolic = { name = "symbolic"; run = Symbolic.run }

let all = [ deeppoly; deeppoly_zero; deeppoly_one; zonotope; symbolic; interval ]

let find name = List.find_opt (fun v -> v.name = name) all
