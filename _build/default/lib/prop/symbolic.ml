module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Split = Abonn_spec.Split
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

(* Symbolic bounds of one stage: width × input_dim coefficient matrices
   plus constant vectors, such that for every x in the input box
   lo_coef·x + lo_const ≤ value ≤ hi_coef·x + hi_const, element-wise. *)
type forms = {
  lo_coef : Matrix.t;
  lo_const : float array;
  hi_coef : Matrix.t;
  hi_const : float array;
}

let identity_forms n =
  { lo_coef = Matrix.identity n;
    lo_const = Array.make n 0.0;
    hi_coef = Matrix.identity n;
    hi_const = Array.make n 0.0 }

(* Concretise a single linear form over the box. *)
let concretize_form ~coef ~const ~(region : Region.t) ~row ~maximise =
  let acc = ref const in
  for j = 0 to region |> Region.dim |> pred do
    let a = Matrix.get coef row j in
    if a <> 0.0 then begin
      let v =
        if (a > 0.0) = maximise then region.Region.upper.(j) else region.Region.lower.(j)
      in
      acc := !acc +. (a *. v)
    end
  done;
  !acc

let concretize region f =
  let n = Array.length f.lo_const in
  let lo =
    Array.init n (fun i ->
        concretize_form ~coef:f.lo_coef ~const:f.lo_const.(i) ~region ~row:i ~maximise:false)
  in
  let hi =
    Array.init n (fun i ->
        concretize_form ~coef:f.hi_coef ~const:f.hi_const.(i) ~region ~row:i ~maximise:true)
  in
  Bounds.create ~lower:lo ~upper:hi

(* Affine image: each output row mixes Lo/Up of its inputs by
   coefficient sign. *)
let affine_image (w : Matrix.t) bias f =
  let rows = w.Matrix.rows and input_dim = f.lo_coef.Matrix.cols in
  let lo_coef = Matrix.zeros rows input_dim and hi_coef = Matrix.zeros rows input_dim in
  let lo_const = Array.make rows 0.0 and hi_const = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let acc_lo = ref bias.(i) and acc_hi = ref bias.(i) in
    for j = 0 to w.Matrix.cols - 1 do
      let wij = Matrix.get w i j in
      if wij <> 0.0 then begin
        let src_lo, src_lo_c, src_hi, src_hi_c =
          if wij > 0.0 then (f.lo_coef, f.lo_const, f.hi_coef, f.hi_const)
          else (f.hi_coef, f.hi_const, f.lo_coef, f.lo_const)
        in
        acc_lo := !acc_lo +. (wij *. src_lo_c.(j));
        acc_hi := !acc_hi +. (wij *. src_hi_c.(j));
        for k = 0 to input_dim - 1 do
          Matrix.set lo_coef i k (Matrix.get lo_coef i k +. (wij *. Matrix.get src_lo j k));
          Matrix.set hi_coef i k (Matrix.get hi_coef i k +. (wij *. Matrix.get src_hi j k))
        done
      end
    done;
    lo_const.(i) <- !acc_lo;
    hi_const.(i) <- !acc_hi
  done;
  { lo_coef; lo_const; hi_coef; hi_const }

(* ReLU image, driven by the (split-clamped) bounds [b]. *)
let relu_image (b : Bounds.t) f =
  let n = Array.length f.lo_const in
  let input_dim = f.lo_coef.Matrix.cols in
  let lo_coef = Matrix.zeros n input_dim and hi_coef = Matrix.zeros n input_dim in
  let lo_const = Array.make n 0.0 and hi_const = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match Bounds.relu_state_of b i with
    | Bounds.Stable_inactive -> ()
    | Bounds.Stable_active ->
      for k = 0 to input_dim - 1 do
        Matrix.set lo_coef i k (Matrix.get f.lo_coef i k);
        Matrix.set hi_coef i k (Matrix.get f.hi_coef i k)
      done;
      lo_const.(i) <- f.lo_const.(i);
      hi_const.(i) <- f.hi_const.(i)
    | Bounds.Unstable ->
      let l = b.Bounds.lower.(i) and u = b.Bounds.upper.(i) in
      let s = u /. (u -. l) in
      let alpha = if u > -.l then 1.0 else 0.0 in
      if alpha > 0.0 then begin
        for k = 0 to input_dim - 1 do
          Matrix.set lo_coef i k (alpha *. Matrix.get f.lo_coef i k)
        done;
        lo_const.(i) <- alpha *. f.lo_const.(i)
      end;
      for k = 0 to input_dim - 1 do
        Matrix.set hi_coef i k (s *. Matrix.get f.hi_coef i k)
      done;
      hi_const.(i) <- s *. (f.hi_const.(i) -. l)
  done;
  { lo_coef; lo_const; hi_coef; hi_const }

let splits_for_layer affine gamma l =
  List.filter_map
    (fun (c : Split.constr) ->
      let layer, idx = Affine.relu_position affine c.Split.relu in
      if layer = l then Some (idx, c.Split.phase) else None)
    gamma

let propagate (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let n_hidden = Affine.num_layers affine - 1 in
  let pre_bounds = Array.make n_hidden (Bounds.create ~lower:[||] ~upper:[||]) in
  let rec loop l f lo hi =
    if l >= n_hidden then Ok (pre_bounds, f, lo, hi)
    else begin
      let w = Affine.(affine.weights.(l)) and bias = Affine.(affine.biases.(l)) in
      let pre = affine_image w bias f in
      let zlo, zhi = Bounds.affine_image w bias ~lo ~hi in
      let b = Bounds.intersect (concretize region pre) ~lo:zlo ~hi:zhi in
      let b =
        List.fold_left
          (fun b (idx, phase) -> Bounds.apply_split b ~idx ~phase)
          b (splits_for_layer affine gamma l)
      in
      if Bounds.is_infeasible b then Error (Array.sub pre_bounds 0 l)
      else begin
        pre_bounds.(l) <- b;
        let post_lo = Array.map (fun v -> Float.max 0.0 v) b.Bounds.lower in
        let post_hi = Array.map (fun v -> Float.max 0.0 v) b.Bounds.upper in
        loop (l + 1) (relu_image b pre) post_lo post_hi
      end
    end
  in
  loop 0
    (identity_forms Affine.(affine.input_dim))
    (Array.copy region.Region.lower)
    (Array.copy region.Region.upper)

let run (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let prop = problem.Problem.property in
  match propagate problem gamma with
  | Error partial -> Outcome.vacuous ~pre_bounds:partial
  | Ok (pre_bounds, last_post, post_lo, post_hi) ->
    let last = Affine.num_layers affine - 1 in
    let w_last = Affine.(affine.weights.(last)) and b_last = Affine.(affine.biases.(last)) in
    let out = affine_image w_last b_last last_post in
    let ylo, yhi = Bounds.affine_image w_last b_last ~lo:post_lo ~hi:post_hi in
    let nrows = prop.Property.c.Matrix.rows in
    let input_dim = Affine.(affine.input_dim) in
    (* Each property row mixes the output forms by sign, then
       concretises; the IBP row bound is kept when tighter. *)
    let row_lower = Array.make nrows 0.0 in
    let row_coefs = Array.make nrows [||] in
    for r = 0 to nrows - 1 do
      let coefs = Array.make input_dim 0.0 in
      let const = ref prop.Property.d.(r) in
      for j = 0 to Array.length out.lo_const - 1 do
        let crj = Matrix.get prop.Property.c r j in
        if crj <> 0.0 then begin
          let src, src_c = if crj > 0.0 then (out.lo_coef, out.lo_const) else (out.hi_coef, out.hi_const) in
          const := !const +. (crj *. src_c.(j));
          for k = 0 to input_dim - 1 do
            coefs.(k) <- coefs.(k) +. (crj *. Matrix.get src j k)
          done
        end
      done;
      let lo = ref !const in
      for k = 0 to input_dim - 1 do
        let a = coefs.(k) in
        lo := !lo +. (if a > 0.0 then a *. region.Region.lower.(k) else a *. region.Region.upper.(k))
      done;
      let ibp_row = ref prop.Property.d.(r) in
      for j = 0 to Array.length ylo - 1 do
        let a = Matrix.get prop.Property.c r j in
        ibp_row := !ibp_row +. (if a > 0.0 then a *. ylo.(j) else a *. yhi.(j))
      done;
      row_lower.(r) <- Float.max !lo !ibp_row;
      row_coefs.(r) <- coefs
    done;
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate =
      if phat > 0.0 then None
      else begin
        let worst = ref 0 in
        Array.iteri (fun i v -> if v < row_lower.(!worst) then worst := i) row_lower;
        let coefs = row_coefs.(!worst) in
        Some
          (Array.init input_dim (fun j ->
               if coefs.(j) > 0.0 then region.Region.lower.(j) else region.Region.upper.(j)))
      end
    in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

let hidden_bounds problem gamma =
  match propagate problem gamma with
  | Ok (b, _, _, _) -> Some b
  | Error _ -> None
