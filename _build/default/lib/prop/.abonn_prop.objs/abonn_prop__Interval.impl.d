lib/prop/interval.ml: Abonn_nn Abonn_spec Abonn_tensor Array Bounds Float List Outcome
