lib/prop/outcome.ml: Bounds
