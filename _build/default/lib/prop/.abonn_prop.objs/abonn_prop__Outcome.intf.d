lib/prop/outcome.mli: Bounds
