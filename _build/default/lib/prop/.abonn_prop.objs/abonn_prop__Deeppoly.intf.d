lib/prop/deeppoly.mli: Abonn_spec Bounds Outcome
