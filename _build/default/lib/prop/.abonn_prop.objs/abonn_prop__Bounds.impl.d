lib/prop/bounds.ml: Abonn_spec Abonn_tensor Array Float List
