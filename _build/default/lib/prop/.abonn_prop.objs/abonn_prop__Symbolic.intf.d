lib/prop/symbolic.mli: Abonn_spec Bounds Outcome
