lib/prop/appver.ml: Abonn_spec Deeppoly Interval List Outcome Symbolic Zonotope
