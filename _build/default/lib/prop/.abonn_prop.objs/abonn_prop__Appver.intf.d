lib/prop/appver.mli: Abonn_spec Outcome
