lib/prop/zonotope.mli: Abonn_spec Bounds Outcome
