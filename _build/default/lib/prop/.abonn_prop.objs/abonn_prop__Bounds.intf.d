lib/prop/bounds.mli: Abonn_spec Abonn_tensor
