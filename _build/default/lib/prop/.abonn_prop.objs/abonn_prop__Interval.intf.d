lib/prop/interval.mli: Abonn_spec Bounds Outcome
