lib/prop/zonotope.ml: Abonn_nn Abonn_spec Abonn_tensor Array Bounds Float Hashtbl List Outcome
