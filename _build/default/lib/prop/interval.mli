(** Interval bound propagation (IBP).

    The cheapest approximate verifier: pushes the input box forward
    through each affine layer with interval arithmetic and clips at
    ReLUs.  Strictly looser than [Deeppoly] but an order of magnitude
    faster per call; used as a sanity oracle in tests and selectable as
    an AppVer for ablations. *)

val run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t
(** The candidate counterexample is the input-box corner that minimises
    the first property row's first-order estimate at the box centre. *)

val hidden_bounds :
  Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Bounds.t array option
(** Pre-activation bounds per hidden layer ([None] if splits are
    infeasible under IBP). *)
