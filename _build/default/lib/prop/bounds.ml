type t = { lower : float array; upper : float array }

let create ~lower ~upper =
  if Array.length lower <> Array.length upper then invalid_arg "Bounds.create: length mismatch";
  { lower = Array.copy lower; upper = Array.copy upper }

let dim t = Array.length t.lower

let is_infeasible t =
  let bad = ref false in
  for i = 0 to dim t - 1 do
    if t.lower.(i) > t.upper.(i) +. 1e-12 then bad := true
  done;
  !bad

let apply_split t ~idx ~phase =
  if idx < 0 || idx >= dim t then invalid_arg "Bounds.apply_split: index out of range";
  let lower = Array.copy t.lower and upper = Array.copy t.upper in
  begin match phase with
  | Abonn_spec.Split.Active -> lower.(idx) <- Float.max lower.(idx) 0.0
  | Abonn_spec.Split.Inactive -> upper.(idx) <- Float.min upper.(idx) 0.0
  end;
  { lower; upper }

type relu_state = Stable_active | Stable_inactive | Unstable

let relu_state_of t i =
  if t.lower.(i) >= 0.0 then Stable_active
  else if t.upper.(i) <= 0.0 then Stable_inactive
  else Unstable

let unstable_indices t =
  let rec loop i acc =
    if i < 0 then acc
    else begin
      let acc =
        match relu_state_of t i with
        | Unstable -> i :: acc
        | Stable_active | Stable_inactive -> acc
      in
      loop (i - 1) acc
    end
  in
  loop (dim t - 1) []

let num_unstable t = List.length (unstable_indices t)

let width t i = t.upper.(i) -. t.lower.(i)

let copy t = { lower = Array.copy t.lower; upper = Array.copy t.upper }

let affine_image (w : Abonn_tensor.Matrix.t) b ~lo ~hi =
  let module Matrix = Abonn_tensor.Matrix in
  let n = w.Matrix.rows and m = w.Matrix.cols in
  let out_lo = Array.make n 0.0 and out_hi = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc_lo = ref b.(i) and acc_hi = ref b.(i) in
    for j = 0 to m - 1 do
      let a = Matrix.get w i j in
      if a > 0.0 then begin
        acc_lo := !acc_lo +. (a *. lo.(j));
        acc_hi := !acc_hi +. (a *. hi.(j))
      end
      else if a < 0.0 then begin
        acc_lo := !acc_lo +. (a *. hi.(j));
        acc_hi := !acc_hi +. (a *. lo.(j))
      end
    done;
    out_lo.(i) <- !acc_lo;
    out_hi.(i) <- !acc_hi
  done;
  (out_lo, out_hi)

let intersect t ~lo ~hi =
  { lower = Array.mapi (fun i v -> Float.max v lo.(i)) t.lower;
    upper = Array.mapi (fun i v -> Float.min v hi.(i)) t.upper }
