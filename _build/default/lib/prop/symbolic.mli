(** Forward symbolic interval propagation (ReluVal/Neurify-style).

    Every neuron carries two affine functions of the *input*,
    [Lo(x) ≤ ẑ ≤ Up(x)], pushed forward layer by layer: affine layers
    mix the two forms by coefficient sign, and an unstable ReLU relaxes
    to [α·Lo(x) ≤ relu(ẑ) ≤ s·(Up(x) − l)] with the DeepPoly adaptive
    lower slope α and chord slope [s = u/(u−l)].

    One forward pass costs [O(width² × input_dim)] per layer, keeping
    symbolic input correlations that plain intervals lose.  (It is
    asymptotically comparable to one back-substitution pass; this
    implementation goes through the generic matrix accessors and is in
    practice slower than [Deeppoly] — see [bench_output.txt] — so its
    value here is as an independent, differently-shaped bound for
    cross-checking, which is also how the test suite uses it.)
    Tightness sits between [Interval] and [Deeppoly]; like both, the
    per-neuron concretisations are intersected with forward intervals,
    so this AppVer is never looser than [Interval].

    Split constraints fold in through the usual per-neuron clamps. *)

val run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t

val hidden_bounds :
  Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Bounds.t array option
