module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Split = Abonn_spec.Split
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

(* One layer of affine forms: value_i = centers.(i) + Σ_k gens.(i).(k)·ε_k
   with ε ∈ [-1,1]^nsym.  All neurons of a stage share the symbol count;
   ReLU stages append one symbol per unstable neuron. *)
type forms = {
  centers : float array;
  gens : float array array;
  nsym : int;
}

let concretize_neuron f i =
  let c = f.centers.(i) in
  let dev = ref 0.0 in
  let g = f.gens.(i) in
  for k = 0 to f.nsym - 1 do
    dev := !dev +. Float.abs g.(k)
  done;
  (c -. !dev, c +. !dev)

let concretize f =
  let n = Array.length f.centers in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let l, h = concretize_neuron f i in
    lo.(i) <- l;
    hi.(i) <- h
  done;
  Bounds.create ~lower:lo ~upper:hi

let input_forms (region : Region.t) =
  let n = Array.length region.Region.lower in
  let centers = Region.center region in
  let radius = Region.radius region in
  { centers;
    gens = Array.init n (fun i -> Array.init n (fun k -> if k = i then radius.(i) else 0.0));
    nsym = n }

let affine_image (w : Matrix.t) bias f =
  let rows = w.Matrix.rows in
  let centers = Array.make rows 0.0 in
  let gens = Array.make_matrix rows f.nsym 0.0 in
  for i = 0 to rows - 1 do
    let acc_c = ref bias.(i) in
    let gi = gens.(i) in
    for j = 0 to w.Matrix.cols - 1 do
      let wij = Matrix.get w i j in
      if wij <> 0.0 then begin
        acc_c := !acc_c +. (wij *. f.centers.(j));
        let gj = f.gens.(j) in
        for k = 0 to f.nsym - 1 do
          gi.(k) <- gi.(k) +. (wij *. gj.(k))
        done
      end
    done;
    centers.(i) <- !acc_c
  done;
  { centers; gens; nsym = f.nsym }

(* DeepZ minimal-area ReLU transformer, driven by the (split-clamped)
   bounds [b]: one fresh symbol per unstable neuron. *)
let relu_image (b : Bounds.t) f =
  let n = Array.length f.centers in
  let unstable = Bounds.unstable_indices b in
  let fresh = List.length unstable in
  let fresh_index = Hashtbl.create 16 in
  List.iteri (fun k i -> Hashtbl.replace fresh_index i (f.nsym + k)) unstable;
  let nsym = f.nsym + fresh in
  let centers = Array.make n 0.0 in
  let gens = Array.make_matrix n nsym 0.0 in
  for i = 0 to n - 1 do
    let gi = gens.(i) in
    match Bounds.relu_state_of b i with
    | Bounds.Stable_inactive -> ()
    | Bounds.Stable_active ->
      centers.(i) <- f.centers.(i);
      Array.blit f.gens.(i) 0 gi 0 f.nsym
    | Bounds.Unstable ->
      let l = b.Bounds.lower.(i) and u = b.Bounds.upper.(i) in
      let lambda = u /. (u -. l) in
      let beta = -.u *. l /. (2.0 *. (u -. l)) in
      centers.(i) <- (lambda *. f.centers.(i)) +. beta;
      for k = 0 to f.nsym - 1 do
        gi.(k) <- lambda *. f.gens.(i).(k)
      done;
      gi.(Hashtbl.find fresh_index i) <- beta
  done;
  { centers; gens; nsym }

let splits_for_layer affine gamma l =
  List.filter_map
    (fun (c : Split.constr) ->
      let layer, idx = Affine.relu_position affine c.Split.relu in
      if layer = l then Some (idx, c.Split.phase) else None)
    gamma

(* As in [Deeppoly], the domain's own concretisation is intersected with
   plain forward intervals (the DeepZ ReLU can concretise below 0, so
   neither dominates; production stacks keep the tighter of the two). *)
let propagate (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let n_hidden = Affine.num_layers affine - 1 in
  let pre_bounds = Array.make n_hidden (Bounds.create ~lower:[||] ~upper:[||]) in
  let rec loop l f lo hi =
    if l >= n_hidden then Ok (pre_bounds, f, lo, hi)
    else begin
      let w = Affine.(affine.weights.(l)) and bias = Affine.(affine.biases.(l)) in
      let pre = affine_image w bias f in
      let zlo, zhi = Bounds.affine_image w bias ~lo ~hi in
      let b = Bounds.intersect (concretize pre) ~lo:zlo ~hi:zhi in
      let b =
        List.fold_left
          (fun b (idx, phase) -> Bounds.apply_split b ~idx ~phase)
          b (splits_for_layer affine gamma l)
      in
      if Bounds.is_infeasible b then Error (Array.sub pre_bounds 0 l)
      else begin
        pre_bounds.(l) <- b;
        let post_lo = Array.map (fun v -> Float.max 0.0 v) b.Bounds.lower in
        let post_hi = Array.map (fun v -> Float.max 0.0 v) b.Bounds.upper in
        loop (l + 1) (relu_image b pre) post_lo post_hi
      end
    end
  in
  loop 0 (input_forms problem.Problem.region)
    (Array.copy region.Region.lower)
    (Array.copy region.Region.upper)

let run (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let prop = problem.Problem.property in
  match propagate problem gamma with
  | Error partial -> Outcome.vacuous ~pre_bounds:partial
  | Ok (pre_bounds, last_post, post_lo, post_hi) ->
    let last = Affine.num_layers affine - 1 in
    let w_last = Affine.(affine.weights.(last)) and b_last = Affine.(affine.biases.(last)) in
    let out = affine_image w_last b_last last_post in
    let ylo, yhi = Bounds.affine_image w_last b_last ~lo:post_lo ~hi:post_hi in
    (* property rows as affine forms over the same symbols *)
    let nrows = prop.Property.c.Matrix.rows in
    let input_dim = Affine.(affine.input_dim) in
    let row_lower = Array.make nrows 0.0 in
    let row_gens = Array.make nrows [||] in
    for r = 0 to nrows - 1 do
      let centre = ref prop.Property.d.(r) in
      let g = Array.make out.nsym 0.0 in
      for j = 0 to Array.length out.centers - 1 do
        let crj = Matrix.get prop.Property.c r j in
        if crj <> 0.0 then begin
          centre := !centre +. (crj *. out.centers.(j));
          let gj = out.gens.(j) in
          for k = 0 to out.nsym - 1 do
            g.(k) <- g.(k) +. (crj *. gj.(k))
          done
        end
      done;
      let dev = Array.fold_left (fun a v -> a +. Float.abs v) 0.0 g in
      (* IBP row bound over the output box, kept when tighter *)
      let ibp_row = ref prop.Property.d.(r) in
      for j = 0 to Array.length ylo - 1 do
        let a = Matrix.get prop.Property.c r j in
        ibp_row := !ibp_row +. (if a > 0.0 then a *. ylo.(j) else a *. yhi.(j))
      done;
      row_lower.(r) <- Float.max (!centre -. dev) !ibp_row;
      row_gens.(r) <- g
    done;
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate =
      if phat > 0.0 then None
      else begin
        let worst = ref 0 in
        Array.iteri (fun i v -> if v < row_lower.(!worst) then worst := i) row_lower;
        let g = row_gens.(!worst) in
        let centre = Region.center region in
        (* worst-case corner over the input noise symbols *)
        Some
          (Array.init input_dim (fun j ->
               if g.(j) > 0.0 then region.Region.lower.(j)
               else if g.(j) < 0.0 then region.Region.upper.(j)
               else centre.(j)))
      end
    in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

let hidden_bounds problem gamma =
  match propagate problem gamma with
  | Ok (b, _, _, _) -> Some b
  | Error _ -> None
