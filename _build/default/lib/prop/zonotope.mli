(** Zonotope (DeepZ-style) bound propagation — the paper's reference
    [16] ("fast and effective robustness certification").

    Every neuron is an affine form [c + Σ g_i ε_i] over shared noise
    symbols [ε_i ∈ [-1, 1]]; affine layers are exact, and each unstable
    ReLU applies the minimal-area transformer
    [y = λx + μ + β·ε_new] with [λ = u/(u−l)], [μ = β = −u·l/(2(u−l))],
    introducing one fresh symbol.  Zonotopes track input correlations
    that plain intervals lose, but unlike DeepPoly back-substitution the
    relaxation is committed layer by layer — neither domain dominates the
    other, which is exactly why verification stacks ship several
    AppVers.

    Split constraints are folded in through the per-neuron interval
    clamps (as in [Deeppoly]); infeasible clamps yield a vacuous
    outcome.  The candidate counterexample assigns each input noise
    symbol its worst sign for the worst property row. *)

val run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t

val hidden_bounds :
  Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Bounds.t array option
(** Pre-activation interval concretisations per hidden layer. *)
