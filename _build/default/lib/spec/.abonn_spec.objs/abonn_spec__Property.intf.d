lib/spec/property.mli: Abonn_tensor
