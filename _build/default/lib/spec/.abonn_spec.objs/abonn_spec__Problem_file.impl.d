lib/spec/problem_file.ml: Abonn_nn Abonn_tensor Array Buffer Filename Fun List Printf Problem Property Region String
