lib/spec/region.mli: Abonn_util
