lib/spec/problem_file.mli: Problem
