lib/spec/problem.mli: Abonn_nn Property Region
