lib/spec/region.ml: Abonn_util Array Float
