lib/spec/split.mli: Abonn_nn Format
