lib/spec/property.ml: Abonn_tensor Array Float Printf
