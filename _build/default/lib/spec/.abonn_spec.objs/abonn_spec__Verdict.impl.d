lib/spec/verdict.ml: Format
