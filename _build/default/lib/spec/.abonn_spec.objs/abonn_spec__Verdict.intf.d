lib/spec/verdict.mli: Format
