lib/spec/problem.ml: Abonn_nn Affine Array Layer Network Property Region
