lib/spec/split.ml: Abonn_nn Array Format List Printf
