module Matrix = Abonn_tensor.Matrix

let floats_to_line arr =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") arr))

let floats_of_words words =
  words
  |> List.map (fun s ->
         match float_of_string_opt s with
         | Some f -> f
         | None -> failwith (Printf.sprintf "Problem_file: bad float %S" s))
  |> Array.of_list

let to_string (problem : Problem.t) ~network_ref =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "abonn-problem 1\n";
  Buffer.add_string buf (Printf.sprintf "network %s\n" network_ref);
  let region = problem.Problem.region in
  Buffer.add_string buf ("box-lower " ^ floats_to_line region.Region.lower ^ "\n");
  Buffer.add_string buf ("box-upper " ^ floats_to_line region.Region.upper ^ "\n");
  let prop = problem.Problem.property in
  for r = 0 to prop.Property.c.Matrix.rows - 1 do
    let row = Matrix.row prop.Property.c r in
    Buffer.add_string buf
      (Printf.sprintf "constraint %h %s\n" prop.Property.d.(r) (floats_to_line row))
  done;
  Buffer.contents buf

type partial = {
  mutable network : string option;
  mutable lower : float array option;
  mutable upper : float array option;
  mutable center : float array option;
  mutable eps : float option;
  mutable clip : (float * float) option;
  mutable robustness : (int * int) option;
  mutable constraints : (float * float array) list;  (* reversed *)
}

let of_string ?(dir = ".") text =
  let p =
    { network = None; lower = None; upper = None; center = None; eps = None; clip = None;
      robustness = None; constraints = [] }
  in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  (match lines with
   | "abonn-problem 1" :: _ -> ()
   | _ -> failwith "Problem_file: missing 'abonn-problem 1' header");
  List.iteri
    (fun i line ->
      if i > 0 then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | "network" :: [ path ] -> p.network <- Some path
        | "box-lower" :: rest -> p.lower <- Some (floats_of_words rest)
        | "box-upper" :: rest -> p.upper <- Some (floats_of_words rest)
        | "center" :: rest -> p.center <- Some (floats_of_words rest)
        | [ "eps"; v ] -> p.eps <- Some (float_of_string v)
        | [ "clip"; a; b ] -> p.clip <- Some (float_of_string a, float_of_string b)
        | [ "robustness"; classes; label ] ->
          p.robustness <- Some (int_of_string classes, int_of_string label)
        | "constraint" :: offset :: rest ->
          p.constraints <- (float_of_string offset, floats_of_words rest) :: p.constraints
        | _ -> failwith (Printf.sprintf "Problem_file: bad line %S" line)
      end)
    lines;
  let network_path =
    match p.network with
    | Some path -> if Filename.is_relative path then Filename.concat dir path else path
    | None -> failwith "Problem_file: missing network"
  in
  let network = Abonn_nn.Serialize.load network_path in
  let region =
    match p.lower, p.upper, p.center, p.eps with
    | Some lower, Some upper, None, None -> Region.create ~lower ~upper
    | None, None, Some center, Some eps -> Region.linf_ball ?clip:p.clip ~center ~eps ()
    | _ ->
      failwith "Problem_file: give either box-lower/box-upper or center/eps (not a mixture)"
  in
  let property =
    match p.robustness, List.rev p.constraints with
    | Some (num_classes, label), [] -> Property.robustness ~num_classes ~label
    | None, ((_ :: _) as rows) ->
      let ncols = Array.length (snd (List.hd rows)) in
      List.iter
        (fun (_, coefs) ->
          if Array.length coefs <> ncols then
            failwith "Problem_file: constraint rows of unequal width")
        rows;
      let c = Matrix.init (List.length rows) ncols (fun i j -> snd (List.nth rows i) |> fun a -> a.(j)) in
      let d = Array.of_list (List.map fst rows) in
      Property.create ~description:"from problem file" c d
    | Some _, _ :: _ -> failwith "Problem_file: robustness and constraint are exclusive"
    | None, [] -> failwith "Problem_file: missing property"
  in
  Problem.create ~name:"problem-file" ~network ~region ~property ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string ~dir:(Filename.dirname path) text)

let save problem ~network_path path =
  Abonn_nn.Serialize.save problem.Problem.network network_path;
  let dir = Filename.dirname path in
  let network_ref =
    (* store relative when the network sits in the same directory *)
    if Filename.dirname network_path = dir then Filename.basename network_path
    else network_path
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string problem ~network_ref))
