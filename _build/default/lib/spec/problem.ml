module Nn = Abonn_nn

type t = {
  name : string;
  network : Nn.Network.t;
  affine : Nn.Affine.t;
  region : Region.t;
  property : Property.t;
}

let validate ~name ~network ~affine ~region ~property =
  if Region.dim region <> Nn.Affine.(affine.input_dim) then
    invalid_arg "Problem: region dimension does not match network input";
  if Property.output_dim property <> Nn.Affine.(affine.output_dim) then
    invalid_arg "Problem: property dimension does not match network output";
  { name; network; affine; region; property }

let create ?(name = "problem") ~network ~region ~property () =
  let affine = Nn.Affine.of_network network in
  validate ~name ~network ~affine ~region ~property

let network_of_affine affine =
  let open Nn in
  let n = Affine.num_layers affine in
  let layers = ref [] in
  for l = n - 1 downto 0 do
    if l < n - 1 then layers := Layer.Relu (Affine.layer_width affine l) :: !layers;
    layers :=
      Layer.linear Affine.(affine.weights.(l)) (Array.copy Affine.(affine.biases.(l))) :: !layers
  done;
  Network.create !layers

let of_affine ?(name = "problem") ~affine ~region ~property () =
  validate ~name ~network:(network_of_affine affine) ~affine ~region ~property

let num_relus t = Nn.Affine.(t.affine.num_relus)

let concrete_margin t x = Property.margin t.property (Nn.Affine.forward t.affine x)

let is_counterexample t x = Region.contains t.region x && concrete_margin t x <= 0.0
