module Matrix = Abonn_tensor.Matrix

type t = { c : Matrix.t; d : float array; description : string }

let create ?(description = "linear property") c d =
  if c.Matrix.rows = 0 then invalid_arg "Property.create: no constraints";
  if Array.length d <> c.Matrix.rows then invalid_arg "Property.create: offset length mismatch";
  { c; d; description }

let robustness ~num_classes ~label =
  if label < 0 || label >= num_classes then invalid_arg "Property.robustness: bad label";
  if num_classes < 2 then invalid_arg "Property.robustness: need at least two classes";
  let m = num_classes - 1 in
  let c = Matrix.zeros m num_classes in
  let row = ref 0 in
  for j = 0 to num_classes - 1 do
    if j <> label then begin
      Matrix.set c !row label 1.0;
      Matrix.set c !row j (-1.0);
      incr row
    end
  done;
  { c;
    d = Array.make m 0.0;
    description = Printf.sprintf "robust(label=%d/%d)" label num_classes }

let single ?(description = "single constraint") coeffs offset =
  let c = Matrix.init 1 (Array.length coeffs) (fun _ j -> coeffs.(j)) in
  { c; d = [| offset |]; description }

let targeted ~num_classes ~label ~target =
  if label < 0 || label >= num_classes || target < 0 || target >= num_classes then
    invalid_arg "Property.targeted: class out of range";
  if label = target then invalid_arg "Property.targeted: label equals target";
  let c = Matrix.zeros 1 num_classes in
  Matrix.set c 0 label 1.0;
  Matrix.set c 0 target (-1.0);
  { c;
    d = [| 0.0 |];
    description = Printf.sprintf "never %d over %d (%d classes)" target label num_classes }

let output_range ~num_classes ~output ~lo ~hi =
  if output < 0 || output >= num_classes then invalid_arg "Property.output_range: bad output";
  if lo >= hi then invalid_arg "Property.output_range: empty range";
  let c = Matrix.zeros 2 num_classes in
  (* y > lo  and  hi > y *)
  Matrix.set c 0 output 1.0;
  Matrix.set c 1 output (-1.0);
  { c;
    d = [| -.lo; hi |];
    description = Printf.sprintf "y%d in (%g, %g)" output lo hi }

let num_constraints t = t.c.Matrix.rows

let output_dim t = t.c.Matrix.cols

let margin t y =
  let v = Matrix.mv t.c y in
  let m = ref infinity in
  Array.iteri (fun i vi -> m := Float.min !m (vi +. t.d.(i))) v;
  !m

let satisfied t y = margin t y > 0.0

let violated t y = not (satisfied t y)
