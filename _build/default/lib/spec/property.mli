(** Output properties Ψ as conjunctions of strict linear inequalities.

    A property holds on an output [y] iff every row of [C y + d] is
    positive.  Local robustness for label [t] is the conjunction
    [y_t − y_j > 0] for all [j ≠ t].  The satisfaction margin
    [min_i (C y + d)_i] is the concrete counterpart of the verifier
    estimate [p̂] in the paper. *)

type t = private {
  c : Abonn_tensor.Matrix.t;  (** [m × output_dim] *)
  d : float array;            (** length [m] *)
  description : string;
}

val create : ?description:string -> Abonn_tensor.Matrix.t -> float array -> t
(** [create c d] — raises [Invalid_argument] when [d] length differs from
    the row count or the matrix has no rows. *)

val robustness : num_classes:int -> label:int -> t
(** Ψ for local robustness of class [label]. *)

val single : ?description:string -> float array -> float -> t
(** One inequality [coeffs · y + offset > 0] — the shape of the paper's
    running example [O + 2.5 > 0]. *)

val targeted : num_classes:int -> label:int -> target:int -> t
(** Ψ for targeted robustness: the network never prefers [target] over
    the true [label] — the single row [y_label − y_target > 0].  Raises
    [Invalid_argument] when the classes coincide or are out of range. *)

val output_range : num_classes:int -> output:int -> lo:float -> hi:float -> t
(** Ψ bounding one output: [lo < y_output < hi] as two rows (the safety
    envelopes of control benchmarks like ACAS-Xu). *)

val num_constraints : t -> int
val output_dim : t -> int

val margin : t -> float array -> float
(** [margin p y = min_i (C y + d)_i]. *)

val satisfied : t -> float array -> bool
(** [margin > 0]. *)

val violated : t -> float array -> bool
(** [margin <= 0]. *)
