(** Input regions Φ: axis-aligned boxes.

    The paper's specifications are L∞ balls around a reference input,
    intersected with the valid pixel range — which is exactly a box. *)

type t = private {
  lower : float array;
  upper : float array;
}

val create : lower:float array -> upper:float array -> t
(** Raises [Invalid_argument] if lengths differ or some [lower > upper]. *)

val linf_ball : ?clip:(float * float) -> center:float array -> eps:float -> unit -> t
(** [linf_ball ~center ~eps ()] is the ball
    [{x : ‖x − center‖∞ ≤ eps}], optionally intersected with
    [\[fst clip, snd clip\]] per coordinate (e.g. [(0., 1.)] for pixels). *)

val dim : t -> int
val center : t -> float array
val radius : t -> float array
(** Per-coordinate half-widths. *)

val contains : t -> float array -> bool
(** Membership with a tiny tolerance (1e-9) for round-off. *)

val clamp : t -> float array -> float array
(** Project a point onto the box. *)

val sample : Abonn_util.Rng.t -> t -> float array
(** Uniform sample. *)

val corner : t -> (int -> bool) -> float array
(** [corner t pick] selects [upper.(i)] where [pick i], else [lower.(i)]. *)

val volume_log : t -> float
(** Sum of [log] widths (−∞ if any width is 0); used only for reporting. *)
