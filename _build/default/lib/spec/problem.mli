(** A verification problem: network + specification (Φ, Ψ).

    The network is stored both in its original layered form (used by
    gradient-based attacks and for inspection) and compiled to affine–ReLU
    form (used by every verifier).  Compilation happens once here. *)

type t = private {
  name : string;
  network : Abonn_nn.Network.t;
  affine : Abonn_nn.Affine.t;
  region : Region.t;
  property : Property.t;
}

val create :
  ?name:string ->
  network:Abonn_nn.Network.t ->
  region:Region.t ->
  property:Property.t ->
  unit ->
  t
(** Raises [Invalid_argument] on dimension mismatches between network,
    region and property. *)

val of_affine :
  ?name:string ->
  affine:Abonn_nn.Affine.t ->
  region:Region.t ->
  property:Property.t ->
  unit ->
  t
(** Build directly from an affine–ReLU network (reconstructs an
    equivalent layered [network] for the attack modules). *)

val num_relus : t -> int
(** [K] of Def. 1. *)

val concrete_margin : t -> float array -> float
(** Margin of Ψ on [N(x)]. *)

val is_counterexample : t -> float array -> bool
(** [valid(x̂)] of the paper: x̂ lies in Φ and violates Ψ on the real
    network. *)
