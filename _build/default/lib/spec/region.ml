type t = { lower : float array; upper : float array }

let create ~lower ~upper =
  if Array.length lower <> Array.length upper then
    invalid_arg "Region.create: dimension mismatch";
  Array.iteri
    (fun i lo -> if lo > upper.(i) then invalid_arg "Region.create: lower > upper")
    lower;
  { lower = Array.copy lower; upper = Array.copy upper }

let linf_ball ?clip ~center ~eps () =
  if eps < 0.0 then invalid_arg "Region.linf_ball: negative radius";
  let lo, hi =
    match clip with
    | None -> (neg_infinity, infinity)
    | Some (a, b) -> (a, b)
  in
  let lower = Array.map (fun c -> Float.max lo (c -. eps)) center in
  let upper = Array.map (fun c -> Float.min hi (c +. eps)) center in
  create ~lower ~upper

let dim t = Array.length t.lower

let center t = Array.mapi (fun i lo -> (lo +. t.upper.(i)) /. 2.0) t.lower

let radius t = Array.mapi (fun i lo -> (t.upper.(i) -. lo) /. 2.0) t.lower

let contains t x =
  Array.length x = dim t
  && begin
       let ok = ref true in
       for i = 0 to dim t - 1 do
         if x.(i) < t.lower.(i) -. 1e-9 || x.(i) > t.upper.(i) +. 1e-9 then ok := false
       done;
       !ok
     end

let clamp t x =
  Array.mapi (fun i xi -> Float.max t.lower.(i) (Float.min t.upper.(i) xi)) x

let sample rng t =
  Array.mapi (fun i lo -> Abonn_util.Rng.range rng lo t.upper.(i)) t.lower

let corner t pick = Array.mapi (fun i lo -> if pick i then t.upper.(i) else lo) t.lower

let volume_log t =
  let acc = ref 0.0 in
  for i = 0 to dim t - 1 do
    let w = t.upper.(i) -. t.lower.(i) in
    acc := !acc +. (if w <= 0.0 then neg_infinity else log w)
  done;
  !acc
