(** Verification verdicts (Alg. 1: {true, false, timeout}). *)

type t =
  | Verified
      (** Ψ holds on the whole region: the paper's [true]. *)
  | Falsified of float array
      (** A validated counterexample: the paper's [false]. *)
  | Timeout
      (** Budget exhausted without a conclusion. *)

val is_verified : t -> bool
val is_falsified : t -> bool
val is_timeout : t -> bool
val is_solved : t -> bool
(** [Verified] or [Falsified]. *)

val counterexample : t -> float array option

val equal : t -> t -> bool
(** Structural equality (counterexamples compared pointwise). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
