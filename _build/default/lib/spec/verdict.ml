type t = Verified | Falsified of float array | Timeout

let is_verified = function Verified -> true | Falsified _ | Timeout -> false

let is_falsified = function Falsified _ -> true | Verified | Timeout -> false

let is_timeout = function Timeout -> true | Verified | Falsified _ -> false

let is_solved = function Verified | Falsified _ -> true | Timeout -> false

let counterexample = function
  | Falsified x -> Some x
  | Verified | Timeout -> None

let equal a b =
  match a, b with
  | Verified, Verified | Timeout, Timeout -> true
  | Falsified x, Falsified y -> x = y
  | (Verified | Falsified _ | Timeout), _ -> false

let pp fmt = function
  | Verified -> Format.pp_print_string fmt "verified"
  | Falsified _ -> Format.pp_print_string fmt "falsified"
  | Timeout -> Format.pp_print_string fmt "timeout"

let to_string t = Format.asprintf "%a" pp t
