(** LP-based approximate verifier over the triangle relaxation.

    Encodes the (split-constrained) network as the standard LP relaxation
    — exact affine layers, triangle-relaxed unstable ReLUs — and minimises
    each property row with the in-repo simplex.  This is the tightest
    AppVer in the repository (it reasons about all neurons jointly, where
    [Abonn_prop.Deeppoly] commits to one linear bound per neuron), at a
    much higher per-call cost; the paper's pipeline reserves LP-grade
    reasoning for the solver backend and we use this engine as a
    cross-check oracle in tests and as an optional AppVer for small
    networks.

    The candidate counterexample is the input part of the LP minimiser —
    a vertex of the relaxation, mirroring what a Gurobi-backed BaB
    implementation validates. *)

val run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Abonn_prop.Outcome.t
(** Pre-activation bounds are taken from [Abonn_prop.Deeppoly] (and are
    part of the returned outcome, as for every AppVer). *)

val appver : Abonn_prop.Appver.t
(** [run] registered under the name ["lp"]. *)
