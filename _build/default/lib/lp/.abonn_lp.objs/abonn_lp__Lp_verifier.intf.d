lib/lp/lp_verifier.mli: Abonn_prop Abonn_spec
