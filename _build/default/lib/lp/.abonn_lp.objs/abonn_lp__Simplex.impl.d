lib/lp/simplex.ml: Abonn_tensor Array Float Option
