lib/lp/boxlp.mli:
