lib/lp/boxlp.ml: Array Float List
