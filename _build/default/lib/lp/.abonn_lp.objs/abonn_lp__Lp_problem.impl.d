lib/lp/lp_problem.ml: Abonn_tensor Array Boxlp Float Hashtbl List Option Printf Simplex
