lib/lp/simplex.mli: Abonn_tensor
