lib/lp/lp_verifier.ml: Abonn_nn Abonn_prop Abonn_spec Abonn_tensor Array Float Lp_problem Printf
