(** Dense two-phase primal simplex for linear programs in standard form:

      minimize    c·x
      subject to  A x = b,   x ≥ 0.

    This is the in-repo substitute for the commercial solver (GUROBI
    9.1.2) the paper's experiments used — see DESIGN.md §4.  Bland's
    anti-cycling rule is applied throughout, so the method terminates on
    every input at the cost of speed; the verification LPs built by
    [Encoding] are small enough for this to be a non-issue.

    Callers with inequality constraints or bounded variables should go
    through [Lp_problem], which performs the standard-form reduction. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded

type solution = {
  status : status;
  objective : float;     (** meaningful only when [status = Optimal] *)
  x : float array;       (** primal solution, length = #variables *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  c:float array ->
  a:Abonn_tensor.Matrix.t ->
  b:float array ->
  unit ->
  solution
(** [solve ~c ~a ~b ()] where [a] is [m × n], [b] length [m], [c] length
    [n].  Raises [Invalid_argument] on dimension mismatch and [Failure]
    if [max_iters] (default [50_000]) pivots are exceeded. *)
