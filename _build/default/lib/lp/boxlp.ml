type sense = Le | Ge | Eq

type row = {
  coefs : (int * float) list;
  sense : sense;
  rhs : float;
}

type status = Optimal | Infeasible | Unbounded

type solution = { status : status; objective : float; x : float array; iterations : int }

let eps = 1e-9

type var_status = Basic | At_lower | At_upper

(* Working state.  [tab] is B⁻¹·A kept explicitly (dense, m × total);
   [xb] holds the current values of the basic variables; [z] is the
   reduced-cost row of the current phase, updated by the same pivots. *)
type state = {
  m : int;
  total : int;            (* structural + slacks + artificials *)
  n_real : int;           (* structural + slacks: artificials excluded from entering *)
  tab : float array array;
  basis : int array;
  xb : float array;
  status : var_status array;
  lo : float array;
  hi : float array;
  z : float array;
  mutable iters : int;
}

let bound_value st j =
  match st.status.(j) with
  | At_lower -> st.lo.(j)
  | At_upper -> st.hi.(j)
  | Basic -> invalid_arg "Boxlp: bound_value of basic variable"

let pivot st ~row ~col =
  let t = st.tab in
  let piv = t.(row).(col) in
  let r = t.(row) in
  for j = 0 to st.total - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to st.m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if f <> 0.0 then begin
        let ri = t.(i) in
        for j = 0 to st.total - 1 do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done
      end
    end
  done;
  let f = st.z.(col) in
  if f <> 0.0 then
    for j = 0 to st.total - 1 do
      st.z.(j) <- st.z.(j) -. (f *. r.(j))
    done

(* One simplex phase on the current [z] row.  Entering variables are
   restricted to indices < [allowed] (phase 2 locks artificials out).
   Bland's rule: smallest eligible entering index; leaving row with the
   tightest ratio, ties by smallest basis index. *)
let run_phase st ~allowed ~max_iters =
  let rec entering j =
    if j >= allowed then None
    else
      match st.status.(j) with
      | At_lower when st.z.(j) < -.eps -> Some (j, 1.0)
      | At_upper when st.z.(j) > eps -> Some (j, -1.0)
      | At_lower | At_upper | Basic -> entering (j + 1)
  in
  let rec loop () =
    st.iters <- st.iters + 1;
    if st.iters > max_iters then failwith "Boxlp: iteration limit exceeded";
    match entering 0 with
    | None -> `Optimal
    | Some (j, dir) ->
      (* The entering variable moves by t ≥ 0 in direction [dir]; basic
         variable i moves by t · delta_i. *)
      let span = st.hi.(j) -. st.lo.(j) in
      let best = ref None in (* (t, row) *)
      for i = 0 to st.m - 1 do
        let delta = -.dir *. st.tab.(i).(j) in
        let bi = st.basis.(i) in
        let limit =
          if delta > eps then (st.hi.(bi) -. st.xb.(i)) /. delta
          else if delta < -.eps then (st.lo.(bi) -. st.xb.(i)) /. delta
          else infinity
        in
        if limit < infinity then begin
          let limit = Float.max 0.0 limit in
          match !best with
          | None -> best := Some (limit, i)
          | Some (t, r) ->
            if limit < t -. eps || (limit < t +. eps && bi < st.basis.(r)) then
              best := Some (limit, i)
        end
      done;
      let t_rows, row = match !best with Some (t, r) -> (t, Some r) | None -> (infinity, None) in
      let t = Float.min span t_rows in
      if t = infinity then `Unbounded
      else if t >= span -. eps && span <= t_rows then begin
        (* bound flip: no basis change *)
        for i = 0 to st.m - 1 do
          st.xb.(i) <- st.xb.(i) +. (t *. -.dir *. st.tab.(i).(j))
        done;
        st.status.(j) <- (match st.status.(j) with At_lower -> At_upper | At_upper -> At_lower | Basic -> Basic);
        loop ()
      end
      else begin
        match row with
        | None -> `Unbounded (* unreachable: t finite implies a limiting row *)
        | Some r ->
          let entering_value = bound_value st j +. (dir *. t) in
          let leaving = st.basis.(r) in
          (* leaving variable stops at whichever of its bounds it hit *)
          let delta_r = -.dir *. st.tab.(r).(j) in
          let leaving_status = if delta_r > 0.0 then At_upper else At_lower in
          for i = 0 to st.m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) +. (t *. -.dir *. st.tab.(i).(j))
          done;
          pivot st ~row:r ~col:j;
          st.basis.(r) <- j;
          st.xb.(r) <- entering_value;
          st.status.(j) <- Basic;
          st.status.(leaving) <- leaving_status;
          loop ()
      end
  in
  loop ()

(* Reduced-cost row for objective [c] (length total) under the current
   basis: z = c - c_B^T · tab. *)
let set_costs st c =
  Array.blit c 0 st.z 0 st.total;
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0.0 then begin
      let row = st.tab.(i) in
      for j = 0 to st.total - 1 do
        st.z.(j) <- st.z.(j) -. (cb *. row.(j))
      done
    end
  done

let solve ?(max_iters = 100_000) ~c ~lo ~hi ~rows () =
  let n = Array.length c in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Boxlp.solve: bound array length mismatch";
  Array.iteri
    (fun j l ->
      if l > hi.(j) then invalid_arg "Boxlp.solve: lo > hi";
      if l = neg_infinity && hi.(j) = infinity then
        invalid_arg "Boxlp.solve: free variable (need one finite bound)")
    lo;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  Array.iter
    (fun r ->
      List.iter
        (fun (j, _) -> if j < 0 || j >= n then invalid_arg "Boxlp.solve: unknown variable")
        r.coefs)
    rows;
  (* columns: structural 0..n-1, slacks n..n+m-1, artificials appended *)
  let n_real = n + m in
  let total = n_real + m (* room for at most one artificial per row *) in
  let tab = Array.make_matrix m total 0.0 in
  let glo = Array.make total 0.0 and ghi = Array.make total 0.0 in
  Array.blit lo 0 glo 0 n;
  Array.blit hi 0 ghi 0 n;
  Array.iteri
    (fun i r ->
      List.iter (fun (j, v) -> tab.(i).(j) <- tab.(i).(j) +. v) r.coefs;
      tab.(i).(n + i) <- 1.0;
      let slo, shi =
        match r.sense with
        | Le -> (0.0, infinity)
        | Ge -> (neg_infinity, 0.0)
        | Eq -> (0.0, 0.0)
      in
      glo.(n + i) <- slo;
      ghi.(n + i) <- shi)
    rows;
  let status = Array.make total At_lower in
  (* structural variables start at a finite bound (prefer lower) *)
  for j = 0 to n - 1 do
    status.(j) <- (if glo.(j) > neg_infinity then At_lower else At_upper)
  done;
  let basis = Array.init m (fun i -> n + i) in
  let xb = Array.make m 0.0 in
  let st = { m; total; n_real; tab; basis; xb; status; lo = glo; hi = ghi; z = Array.make total 0.0; iters = 0 } in
  (* initial basic (slack) values: s_i = b_i - Σ A_ij · xval_j *)
  let structural_value j = match status.(j) with At_upper -> ghi.(j) | At_lower | Basic -> glo.(j) in
  let n_artificials = ref 0 in
  for i = 0 to m - 1 do
    let acc = ref rows.(i).rhs in
    List.iter (fun (j, v) -> acc := !acc -. (v *. structural_value j)) rows.(i).coefs;
    let s = !acc in
    let slo = glo.(n + i) and shi = ghi.(n + i) in
    if s >= slo -. eps && s <= shi +. eps then begin
      st.basis.(i) <- n + i;
      st.status.(n + i) <- Basic;
      st.xb.(i) <- s
    end
    else begin
      (* violated: park the slack at the violated bound and absorb the
         residual into a fresh artificial (always ≥ 0) *)
      let a = n_real + !n_artificials in
      incr n_artificials;
      let excess_high = s > shi in
      let bound = if excess_high then shi else slo in
      st.status.(n + i) <- (if excess_high then At_upper else At_lower);
      let sigma = if excess_high then 1.0 else -1.0 in
      (* The artificial's basis column must be +e_i: the artificial
         enters the equation with coefficient sigma, so scale the whole
         row by sigma to normalise it. *)
      for j = 0 to total - 1 do
        st.tab.(i).(j) <- sigma *. st.tab.(i).(j)
      done;
      st.tab.(i).(a) <- 1.0;
      glo.(a) <- 0.0;
      ghi.(a) <- infinity;
      st.basis.(i) <- a;
      st.status.(a) <- Basic;
      st.xb.(i) <- sigma *. (s -. bound)
    end
  done;
  (* hide unused artificial columns *)
  for a = n_real + !n_artificials to total - 1 do
    glo.(a) <- 0.0;
    ghi.(a) <- 0.0
  done;
  let fail_result status =
    { status; objective = 0.0; x = Array.make n 0.0; iterations = st.iters }
  in
  (* phase 1 *)
  let infeasible =
    if !n_artificials = 0 then false
    else begin
      let c1 = Array.make total 0.0 in
      for a = n_real to n_real + !n_artificials - 1 do
        c1.(a) <- 1.0
      done;
      set_costs st c1;
      (match run_phase st ~allowed:n_real ~max_iters with
       | `Unbounded -> failwith "Boxlp: phase 1 unbounded (cannot happen)"
       | `Optimal -> ());
      let resid = ref 0.0 in
      for i = 0 to m - 1 do
        if st.basis.(i) >= n_real then resid := !resid +. st.xb.(i)
      done;
      (* pin artificials so phase 2 cannot move them *)
      for a = n_real to total - 1 do
        glo.(a) <- 0.0;
        ghi.(a) <- 0.0
      done;
      !resid > 1e-7
    end
  in
  if infeasible then fail_result Infeasible
  else begin
    let c2 = Array.make total 0.0 in
    Array.blit c 0 c2 0 n;
    set_costs st c2;
    match run_phase st ~allowed:n_real ~max_iters with
    | `Unbounded -> { (fail_result Unbounded) with objective = neg_infinity }
    | `Optimal ->
      let x = Array.make n 0.0 in
      for j = 0 to n - 1 do
        x.(j) <-
          (match st.status.(j) with
           | At_lower -> glo.(j)
           | At_upper -> ghi.(j)
           | Basic -> 0.0)
      done;
      for i = 0 to m - 1 do
        if st.basis.(i) < n then x.(st.basis.(i)) <- st.xb.(i)
      done;
      let objective = ref 0.0 in
      for j = 0 to n - 1 do
        objective := !objective +. (c.(j) *. x.(j))
      done;
      { status = Optimal; objective = !objective; x; iterations = st.iters }
  end
