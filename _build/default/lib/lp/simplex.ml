module Matrix = Abonn_tensor.Matrix

type status = Optimal | Infeasible | Unbounded

type solution = { status : status; objective : float; x : float array; iterations : int }

let eps = 1e-9

(* Tableau layout: rows 0..m-1 are constraints, columns 0..total-1 are
   variables, column [total] is the right-hand side.  [basis.(r)] is the
   variable basic in row r.  [cost] is the current reduced-cost row and
   [obj] the (negated) objective value, both maintained incrementally by
   pivoting. *)
type tableau = {
  m : int;
  total : int;
  tab : float array array;  (* m rows × (total + 1) *)
  basis : int array;
  cost : float array;       (* length total + 1; last entry = -objective *)
}

let pivot t ~row ~col =
  let width = t.total + 1 in
  let piv = t.tab.(row).(col) in
  let r = t.tab.(row) in
  for j = 0 to width - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ri = t.tab.(i) in
        for j = 0 to width - 1 do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done
      end
    end
  done;
  let factor = t.cost.(col) in
  if Float.abs factor > 0.0 then
    for j = 0 to width - 1 do
      t.cost.(j) <- t.cost.(j) -. (factor *. r.(j))
    done;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest index with negative reduced cost;
   leaving = row minimising the ratio, ties broken by smallest basis
   variable index.  Guarantees termination. *)
let entering t ~allowed =
  let rec loop j =
    if j >= allowed then None else if t.cost.(j) < -.eps then Some j else loop (j + 1)
  in
  loop 0

let leaving t ~col =
  let best = ref None in
  for i = 0 to t.m - 1 do
    let aij = t.tab.(i).(col) in
    if aij > eps then begin
      let ratio = t.tab.(i).(t.total) /. aij in
      match !best with
      | None -> best := Some (i, ratio)
      | Some (bi, bratio) ->
        if ratio < bratio -. eps || (Float.abs (ratio -. bratio) <= eps && t.basis.(i) < t.basis.(bi))
        then best := Some (i, ratio)
    end
  done;
  Option.map fst !best

let run_phase t ~allowed ~max_iters ~iters =
  let rec loop () =
    if !iters > max_iters then failwith "Simplex: iteration limit exceeded";
    match entering t ~allowed with
    | None -> `Optimal
    | Some col ->
      begin match leaving t ~col with
      | None -> `Unbounded
      | Some row ->
        incr iters;
        pivot t ~row ~col;
        loop ()
      end
  in
  loop ()

let solve ?(max_iters = 50_000) ~c ~(a : Matrix.t) ~b () =
  let m = a.Matrix.rows and n = a.Matrix.cols in
  if Array.length b <> m then invalid_arg "Simplex.solve: b length mismatch";
  if Array.length c <> n then invalid_arg "Simplex.solve: c length mismatch";
  let total = n + m in
  (* Constraint rows with b >= 0 (flip signs as needed) and artificial
     variables n..n+m-1 forming the initial identity basis. *)
  let tab =
    Array.init m (fun i ->
        let row = Array.make (total + 1) 0.0 in
        let flip = if b.(i) < 0.0 then -1.0 else 1.0 in
        for j = 0 to n - 1 do
          row.(j) <- flip *. Matrix.get a i j
        done;
        row.(n + i) <- 1.0;
        row.(total) <- flip *. b.(i);
        row)
  in
  let basis = Array.init m (fun i -> n + i) in
  (* Phase-1 cost: sum of artificials, expressed over the current basis
     (subtract each constraint row once). *)
  let cost = Array.make (total + 1) 0.0 in
  for j = n to total - 1 do
    cost.(j) <- 1.0
  done;
  for i = 0 to m - 1 do
    for j = 0 to total do
      cost.(j) <- cost.(j) -. tab.(i).(j)
    done
  done;
  let t = { m; total; tab; basis; cost } in
  let iters = ref 0 in
  begin match run_phase t ~allowed:total ~max_iters ~iters with
  | `Unbounded -> failwith "Simplex: phase 1 unbounded (cannot happen)"
  | `Optimal -> ()
  end;
  let phase1_obj = -.t.cost.(total) in
  if phase1_obj > 1e-7 then
    { status = Infeasible; objective = 0.0; x = Array.make n 0.0; iterations = !iters }
  else begin
    (* Drive any residual artificial variables out of the basis; rows
       whose coefficients over the structural variables are all zero are
       redundant constraints and may keep a zero-valued artificial. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= n then begin
        let rec find j =
          if j >= n then None else if Float.abs t.tab.(i).(j) > eps then Some j else find (j + 1)
        in
        match find 0 with
        | Some j -> incr iters; pivot t ~row:i ~col:j
        | None -> ()
      end
    done;
    (* Phase-2 cost row: original objective expressed over the basis. *)
    Array.fill t.cost 0 (total + 1) 0.0;
    for j = 0 to n - 1 do
      t.cost.(j) <- c.(j)
    done;
    for i = 0 to m - 1 do
      let bi = t.basis.(i) in
      if bi < n && Float.abs c.(bi) > 0.0 then begin
        let cb = c.(bi) in
        for j = 0 to total do
          t.cost.(j) <- t.cost.(j) -. (cb *. t.tab.(i).(j))
        done
      end
    done;
    (* Forbid artificial variables from re-entering: restrict entering
       column search to structural variables. *)
    match run_phase t ~allowed:n ~max_iters ~iters with
    | `Unbounded ->
      { status = Unbounded; objective = neg_infinity; x = Array.make n 0.0; iterations = !iters }
    | `Optimal ->
      let x = Array.make n 0.0 in
      for i = 0 to m - 1 do
        if t.basis.(i) < n then x.(t.basis.(i)) <- t.tab.(i).(total)
      done;
      let objective = ref 0.0 in
      for j = 0 to n - 1 do
        objective := !objective +. (c.(j) *. x.(j))
      done;
      { status = Optimal; objective = !objective; x; iterations = !iters }
  end
