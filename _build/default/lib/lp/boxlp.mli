(** Dense simplex with bounded variables (Chvátal ch. 8).

    Solves   minimize c·x   subject to   A x {≤,=,≥} b,   l ≤ x ≤ u,

    keeping variable bounds *implicit*: non-basic variables sit at a
    finite bound instead of being forced to 0, and upper bounds never
    become tableau rows.  For the verification LPs built by this
    repository — a few dozen constraint rows over a few hundred
    box-bounded variables — this is one to two orders of magnitude faster
    than the textbook standard-form reduction in {!Simplex}, which must
    add one row per finite upper bound.

    Every variable needs at least one finite bound (no free variables);
    [Lp_problem] falls back to {!Simplex} when that is violated.  Bland's
    rule is used for entering/leaving selection, so the method terminates
    on degenerate instances.  Feasibility is established by a bounded
    phase-1 with one artificial per initially-violated row. *)

type sense = Le | Ge | Eq

type row = {
  coefs : (int * float) list;  (** sparse (variable, coefficient) *)
  sense : sense;
  rhs : float;
}

type status =
  | Optimal
  | Infeasible
  | Unbounded

type solution = {
  status : status;
  objective : float;
  x : float array;   (** structural variables only *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  c:float array ->
  lo:float array ->
  hi:float array ->
  rows:row list ->
  unit ->
  solution
(** [solve ~c ~lo ~hi ~rows ()].  Raises [Invalid_argument] if array
    lengths differ, some [lo > hi], a variable has two infinite bounds,
    or a row references an unknown variable; raises [Failure] past
    [max_iters] (default 100_000) pivots. *)
