(* gen_models: train the Table I benchmark model zoo and cache the
   weights under a directory (text format, see Abonn_nn.Serialize).

   Usage: gen_models [--dir models] [--seed 7] [--epochs 15] *)

open Cmdliner

let run dir seed epochs =
  List.iter
    (fun spec ->
      let t0 = Unix.gettimeofday () in
      let t = Abonn_data.Models.train_cached ~dir ~seed ~epochs spec in
      Printf.printf "%-12s %-22s neurons=%4d train_acc=%.3f test_acc=%.3f (%.1fs)\n%!"
        spec.Abonn_data.Models.name spec.Abonn_data.Models.architecture
        (Abonn_nn.Network.num_neurons t.Abonn_data.Models.network)
        t.Abonn_data.Models.train_accuracy t.Abonn_data.Models.test_accuracy
        (Unix.gettimeofday () -. t0))
    Abonn_data.Models.all

let dir_arg =
  Arg.(value & opt string "models" & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Training seed.")

let epochs_arg =
  Arg.(value & opt int 15 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")

let cmd =
  let doc = "train and cache the ABONN benchmark models (Table I)" in
  Cmd.v (Cmd.info "gen_models" ~doc) Term.(const run $ dir_arg $ seed_arg $ epochs_arg)

let () = exit (Cmd.eval cmd)
