(* Hyperparameter study — a miniature of the paper's RQ2 (Fig. 5).

     dune exec examples/hyperparameter_study.exe

   Sweeps the potentiality weight λ (Def. 1) and the UCB1 exploration
   constant c (Alg. 1 Line 13) on a few mnist_l4 instances, printing the
   grid of average costs; the best cell is starred, illustrating the
   exploration/exploitation balance the paper discusses. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Runner = Abonn_harness.Runner
module Config = Abonn_core.Config
module Result = Abonn_bab.Result
module Table = Abonn_util.Table

let lambdas = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
let cs = [ 0.0; 0.1; 0.2; 0.5; 1.0 ]

let () =
  print_endline "training mnist_l4 and generating instances...";
  let trained = Models.train Models.mnist_l4 in
  (* Violation-leaning bands: only where a counterexample can be found
     early can the exploration order (and hence λ, c) change the cost —
     certified problems cost the same under any order with a
     deterministic branching heuristic.  A quick screening pass keeps
     instances whose counterexample needs real search. *)
  let bands =
    [ Instances.Above_attack 0.99; Instances.Above_attack 1.0; Instances.Above_attack 1.01;
      Instances.Between 0.9 ]
  in
  let pool = Instances.generate ~count:16 ~bands trained in
  let needs_search (inst : Instances.t) =
    let r =
      Abonn_bab.Bfs.verify ~budget:(Abonn_util.Budget.of_calls 2000) inst.Instances.problem
    in
    match r.Result.verdict with
    | Abonn_spec.Verdict.Falsified _ -> r.Result.stats.Result.appver_calls >= 30
    | Abonn_spec.Verdict.Verified | Abonn_spec.Verdict.Timeout -> false
  in
  let mined = List.filter needs_search pool in
  let instances = List.filteri (fun i _ -> i < 4) (if mined = [] then pool else mined) in
  Printf.printf "%d instances; sweeping %d x %d configurations\n\n"
    (List.length instances) (List.length lambdas) (List.length cs);

  let cell lambda c =
    let engine =
      Runner.abonn_named (Printf.sprintf "l%.2f-c%.2f" lambda c) (Config.make ~lambda ~c ())
    in
    let total =
      List.fold_left
        (fun acc inst ->
          let r = Runner.run_instance ~calls:300 engine inst in
          acc + r.Runner.result.Result.stats.Result.appver_calls)
        0 instances
    in
    float_of_int total
  in
  let cells = List.map (fun l -> List.map (fun c -> ((l, c), cell l c)) cs) lambdas in
  let best = List.fold_left (fun a (_, v) -> Float.min a v) infinity (List.concat cells) in
  let header = "lambda\\c" :: List.map string_of_float cs in
  let rows =
    List.map2
      (fun l row ->
        string_of_float l
        :: List.map
             (fun (_, v) ->
               Printf.sprintf "%.0f%s" v (if v = best then "*" else ""))
             row)
      lambdas cells
  in
  print_endline "total AppVer calls over the instance set (lower is better, * = best):";
  print_endline
    (Table.render ~align:(Table.Left :: List.map (fun _ -> Table.Right) cs) ~header rows)
