(* Verification certificates: produce a checkable proof of a Verified
   verdict and audit it with the independent checker.

     dune exec examples/proof_checking.exe

   A BaB proof is the finite set of discharged leaves covering the split
   space.  The checker replays every leaf with a fresh AppVer call and
   verifies the leaves form an exact binary cover, so a "Verified" answer
   does not have to be taken on faith from the search engine.  The
   example also shows the checker catching a corrupted certificate. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Verdict = Abonn_spec.Verdict
module Split = Abonn_spec.Split
module Result = Abonn_bab.Result
module Bfs = Abonn_bab.Bfs
module Certificate = Abonn_bab.Certificate
module Budget = Abonn_util.Budget

let () =
  print_endline "training mnist_l2 and picking a certifiable-after-split instance...";
  let trained = Models.train Models.mnist_l2 in
  let instances =
    Instances.generate ~count:8 ~bands:[ Instances.Between 0.35; Instances.Between 0.15 ]
      trained
  in
  let verified_instance =
    List.find_map
      (fun (inst : Instances.t) ->
        let result, cert =
          Bfs.verify_with_certificate ~budget:(Budget.of_calls 2000) inst.Instances.problem
        in
        match result.Result.verdict, cert with
        | Verdict.Verified, Some cert when Certificate.num_leaves cert >= 3 ->
          Some (inst, result, cert)
        | _ -> None)
      instances
  in
  match verified_instance with
  | None -> print_endline "no multi-leaf verified instance in this batch; re-run with more"
  | Some (inst, result, cert) ->
    Printf.printf "instance %s: verified with %d AppVer calls\n" inst.Instances.id
      result.Result.stats.Result.appver_calls;
    Printf.printf "certificate: %d discharged leaves, AppVer %s\n\n"
      (Certificate.num_leaves cert) cert.Certificate.appver_name;

    print_endline "first leaves of the proof:";
    List.iteri
      (fun i (leaf : Certificate.leaf) ->
        if i < 6 then
          Printf.printf "  Γ = %-24s p-hat = %s%s\n"
            (Split.to_string leaf.Certificate.gamma)
            (Abonn_util.Table.fmt_float ~digits:4 leaf.Certificate.phat)
            (if leaf.Certificate.by_exact then "  (exact LP)" else ""))
      cert.Certificate.leaves;
    if Certificate.num_leaves cert > 6 then
      Printf.printf "  ... and %d more\n" (Certificate.num_leaves cert - 6);

    print_newline ();
    (match Certificate.check inst.Instances.problem cert with
     | Ok () -> print_endline "independent check: certificate ACCEPTED"
     | Error e ->
       Format.printf "independent check: REJECTED (%a)@." Certificate.pp_error e);

    (* tamper with the proof: drop a leaf *)
    let corrupted =
      { cert with Certificate.leaves = List.tl cert.Certificate.leaves }
    in
    (match Certificate.check inst.Instances.problem corrupted with
     | Ok () -> print_endline "BUG: corrupted certificate accepted"
     | Error e ->
       Format.printf "corrupted certificate correctly rejected: %a@." Certificate.pp_error e)
