(* Quickstart: verify a small network against output properties, in the
   spirit of the paper's Fig. 1 running example.

     dune exec examples/quickstart.exe

   A 2-4-4-1 ReLU network over the unit square is checked against
   O(x) + d > 0 for two offsets d:

   - a *verified* case where the root AppVer call raises a false alarm
     (negative bound, spurious counterexample), so BaB has to split —
     exactly the situation of Fig. 1b;
   - a *violated* case where ABONN's guided exploration digs out a real
     counterexample.

   ABONN's trace shows each expanded node Γ with its counterexample
   potentiality [[Γ]] (Def. 1). *)

module Verdict = Abonn_spec.Verdict
module Result = Abonn_bab.Result

let build_network () =
  (* Deterministic weights: the seed is part of the example. *)
  let rng = Abonn_util.Rng.create 3 in
  Abonn_nn.Builder.mlp rng ~dims:[ 2; 4; 4; 1 ]

let verify_with_offset network offset =
  let region = Abonn_spec.Region.create ~lower:[| 0.0; 0.0 |] ~upper:[| 1.0; 1.0 |] in
  let property = Abonn_spec.Property.single [| 1.0 |] offset in
  let problem =
    Abonn_spec.Problem.create ~name:"quickstart" ~network ~region ~property ()
  in
  Printf.printf "spec: forall x in [0,1]^2,  O(x) + %.2f > 0\n" offset;
  let root = Abonn_prop.Deeppoly.run problem [] in
  Printf.printf "root AppVer bound p-hat = %.4f%s\n" root.Abonn_prop.Outcome.phat
    (if root.Abonn_prop.Outcome.phat < 0.0 then "  (negative: split or find a counterexample)"
     else "");
  print_endline "ABONN exploration (depth, node Γ, reward [[Γ]]):";
  let trace ~depth ~gamma ~reward =
    Printf.printf "  depth=%d  Γ=%-16s  [[Γ]]=%s\n" depth (Abonn_spec.Split.to_string gamma)
      (Abonn_util.Table.fmt_float ~digits:4 reward)
  in
  let abonn = Abonn_core.Abonn.verify ~trace problem in
  Printf.printf "ABONN verdict:        %s (%d AppVer calls, %d nodes)\n"
    (Verdict.to_string abonn.Result.verdict)
    abonn.Result.stats.Result.appver_calls abonn.Result.stats.Result.nodes;
  let baseline = Abonn_bab.Bfs.verify problem in
  Printf.printf "BaB-baseline verdict: %s (%d AppVer calls)\n"
    (Verdict.to_string baseline.Result.verdict)
    baseline.Result.stats.Result.appver_calls;
  (match Verdict.counterexample abonn.Result.verdict with
   | Some x ->
     Printf.printf "counterexample: (%.4f, %.4f) with margin %.4f\n" x.(0) x.(1)
       (Abonn_spec.Problem.concrete_margin problem x)
   | None -> print_endline "property holds on the whole input region");
  print_newline ()

let () =
  let network = build_network () in
  print_endline "== case 1: certifiable property with a false alarm at the root ==";
  verify_with_offset network 1.36;
  print_endline "== case 2: violated property ==";
  verify_with_offset network 1.0
