(* Engine comparison on benchmark instances — a miniature of the paper's
   RQ1 (Table II).

     dune exec examples/compare_verifiers.exe

   Runs BaB-baseline, the αβ-CROWN-style baseline, best-first BaB and
   ABONN over instances of one model family, printing per-instance
   verdicts/costs and the aggregate line each engine would contribute to
   Table II. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Runner = Abonn_harness.Runner
module Result = Abonn_bab.Result
module Verdict = Abonn_spec.Verdict
module Table = Abonn_util.Table

let engines =
  Runner.default_engines
  @ [ { Runner.name = "bestfirst";
        run = (fun ~budget problem -> Abonn_bab.Bestfirst.verify ~budget problem) }
    ]

let () =
  print_endline "training cifar_base and generating instances...";
  let trained = Models.train Models.cifar_base in
  let instances = Instances.generate ~count:6 trained in
  Printf.printf "%d instances\n\n" (List.length instances);

  let records =
    List.map
      (fun engine ->
        (engine, List.map (fun i -> Runner.run_instance ~calls:400 engine i) instances))
      engines
  in

  (* per-instance table *)
  let header = "Instance" :: List.map (fun ((e : Runner.engine), _) -> e.Runner.name) records in
  let rows =
    List.mapi
      (fun k (inst : Instances.t) ->
        inst.Instances.id
        :: List.map
             (fun (_, rs) ->
               let r = List.nth rs k in
               Printf.sprintf "%s/%d"
                 (Verdict.to_string r.Runner.result.Result.verdict)
                 r.Runner.result.Result.stats.Result.appver_calls)
             records)
      instances
  in
  print_endline (Table.render ~header rows);
  print_newline ();

  (* aggregate *)
  let agg =
    List.map
      (fun (e, rs) ->
        let solved =
          List.length
            (List.filter (fun r -> Verdict.is_solved r.Runner.result.Result.verdict) rs)
        in
        let calls =
          List.fold_left (fun a r -> a + r.Runner.result.Result.stats.Result.appver_calls) 0 rs
        in
        [ e.Runner.name; string_of_int solved; string_of_int calls ])
      records
  in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right ]
       ~header:[ "Engine"; "Solved"; "Total AppVer calls" ]
       agg)
