examples/lp_certification.mli:
