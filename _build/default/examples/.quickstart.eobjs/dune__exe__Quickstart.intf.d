examples/quickstart.mli:
