examples/compare_verifiers.mli:
