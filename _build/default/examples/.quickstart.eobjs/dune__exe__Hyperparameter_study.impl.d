examples/hyperparameter_study.ml: Abonn_bab Abonn_core Abonn_data Abonn_harness Abonn_spec Abonn_util Float List Printf
