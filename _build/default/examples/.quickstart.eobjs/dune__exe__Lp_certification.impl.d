examples/lp_certification.ml: Abonn_data Abonn_lp Abonn_nn Abonn_prop Abonn_spec Abonn_util Array List Printf Unix
