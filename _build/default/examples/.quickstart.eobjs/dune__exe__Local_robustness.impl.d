examples/local_robustness.ml: Abonn_bab Abonn_core Abonn_data Abonn_nn Abonn_spec Abonn_tensor Abonn_util Array List Printf
