examples/proof_checking.mli:
