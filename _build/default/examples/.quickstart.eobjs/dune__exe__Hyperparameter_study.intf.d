examples/hyperparameter_study.mli:
