examples/local_robustness.mli:
