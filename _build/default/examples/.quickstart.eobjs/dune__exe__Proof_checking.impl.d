examples/proof_checking.ml: Abonn_bab Abonn_data Abonn_spec Abonn_util Format List Printf
