examples/compare_verifiers.ml: Abonn_bab Abonn_data Abonn_harness Abonn_spec Abonn_util List Printf
