(* The AppVer tightness ladder: interval bounds vs DeepPoly vs the full
   triangle-relaxation LP.

     dune exec examples/lp_certification.exe

   On one robustness problem the three approximate verifiers return
   increasingly tight certified bounds p̂ (at increasing cost); the LP is
   the paper's "GUROBI-grade" reference point (DESIGN.md §4).  The
   example also shows the certified-radius gap: the largest ε each
   verifier can prove outright. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Synth = Abonn_data.Synth
module Trainer = Abonn_nn.Trainer
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver
module Table = Abonn_util.Table

let verifiers =
  [ Appver.interval; Appver.deeppoly_zero; Appver.deeppoly; Abonn_lp.Lp_verifier.appver ]

let () =
  print_endline "training mnist_l2...";
  let trained = Models.train Models.mnist_l2 in
  let dataset = trained.Models.dataset in
  let sample = dataset.Synth.test.(3) in
  let center = sample.Trainer.features in
  let label = sample.Trainer.label in
  let affine = Abonn_nn.Affine.of_network trained.Models.network in
  let num_classes = dataset.Synth.num_classes in

  let problem_at eps =
    let region = Abonn_spec.Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps () in
    let property = Abonn_spec.Property.robustness ~num_classes ~label in
    Abonn_spec.Problem.of_affine ~affine ~region ~property ()
  in

  (* p̂ ladder at a fixed radius *)
  let eps = 0.02 in
  Printf.printf "\ncertified bound p-hat at eps = %.3f (higher = tighter):\n" eps;
  let rows =
    List.map
      (fun (v : Appver.t) ->
        let t0 = Unix.gettimeofday () in
        let outcome = v.Appver.run (problem_at eps) [] in
        let dt = Unix.gettimeofday () -. t0 in
        [ v.Appver.name;
          Table.fmt_float ~digits:4 outcome.Outcome.phat;
          (if Outcome.proved outcome then "proved" else "inconclusive");
          Printf.sprintf "%.1f ms" (1000.0 *. dt) ])
      verifiers
  in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Left; Table.Right ]
       ~header:[ "AppVer"; "p-hat"; "status"; "cost" ]
       rows);

  (* certified radius per verifier *)
  print_endline "\nlargest eps each verifier certifies at the root (10-step bisection):";
  List.iter
    (fun (v : Appver.t) ->
      let proves eps = Outcome.proved (v.Appver.run (problem_at eps) []) in
      let rec bisect lo hi n =
        if n = 0 then lo
        else begin
          let mid = (lo +. hi) /. 2.0 in
          if proves mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
        end
      in
      let r = if proves 1e-5 then bisect 1e-5 0.3 10 else 0.0 in
      Printf.printf "  %-14s %.5f\n" v.Appver.name r)
    verifiers
