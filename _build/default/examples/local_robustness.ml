(* Local robustness of a trained classifier — the workload the paper's
   introduction motivates (§I: adversarial perturbations of images).

     dune exec examples/local_robustness.exe

   Trains the MNIST-like 2-layer model, picks a test image, and sweeps
   the perturbation radius ε: below the certified radius the root AppVer
   call already proves robustness; past it, ABONN either certifies after
   splitting or produces an adversarial image. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Synth = Abonn_data.Synth
module Trainer = Abonn_nn.Trainer
module Verdict = Abonn_spec.Verdict
module Result = Abonn_bab.Result
module Budget = Abonn_util.Budget

let () =
  print_endline "training mnist_l2 on the synthetic dataset...";
  let trained = Models.train Models.mnist_l2 in
  Printf.printf "test accuracy: %.1f%%\n\n" (100.0 *. trained.Models.test_accuracy);

  let dataset = trained.Models.dataset in
  let sample = dataset.Synth.test.(0) in
  let center = sample.Trainer.features in
  let label = sample.Trainer.label in
  let affine = Abonn_nn.Affine.of_network trained.Models.network in
  let num_classes = dataset.Synth.num_classes in

  let radius = Instances.certified_radius ~affine ~center ~label ~num_classes in
  Printf.printf "image #0 (label %d): certified radius (root DeepPoly) = %.5f\n\n" label radius;

  print_endline "eps sweep with ABONN (budget 600 AppVer calls):";
  List.iter
    (fun factor ->
      let eps = radius *. factor in
      let region = Abonn_spec.Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps () in
      let property = Abonn_spec.Property.robustness ~num_classes ~label in
      let problem = Abonn_spec.Problem.of_affine ~affine ~region ~property () in
      let r = Abonn_core.Abonn.verify ~budget:(Budget.of_calls 600) problem in
      Printf.printf "  eps = %.5f (%.2fx): %-9s  calls=%-4d nodes=%-4d depth=%d\n"
        eps factor
        (Verdict.to_string r.Result.verdict)
        r.Result.stats.Result.appver_calls r.Result.stats.Result.nodes
        r.Result.stats.Result.max_depth;
      match Verdict.counterexample r.Result.verdict with
      | Some x ->
        let flipped = Abonn_nn.Network.predict trained.Models.network x in
        Printf.printf "      adversarial image found: classified %d instead of %d, \
                       L_inf distance %.5f\n"
          flipped label
          (Abonn_tensor.Vector.norm_inf (Abonn_tensor.Vector.sub x center))
      | None -> ())
    [ 0.5; 0.9; 1.05; 1.2; 1.5; 2.5; 4.0 ]
