(* abonn_trace: offline analytics over --trace JSONL files.

   Examples:
     abonn_trace summary run.jsonl
     abonn_trace tree run.jsonl --dot -o tree.dot
     abonn_trace phases run.jsonl
     abonn_trace curve run.jsonl -o curve.csv
     abonn_trace diff abonn.jsonl baseline.jsonl
     abonn_trace watch run.jsonl --calls 2000
     abonn_trace bench --against BENCH_bab_nodes.json --max-regress 20

   Schema: docs/TRACE_SCHEMA.md; analytics: lib/trace. *)

open Cmdliner
module Reader = Abonn_trace.Reader
module Summary = Abonn_trace.Summary
module Tree = Abonn_trace.Tree
module Phases = Abonn_trace.Phases
module Curve = Abonn_trace.Curve
module Diff = Abonn_trace.Diff
module Monitor = Abonn_trace.Monitor
module Regress = Abonn_trace.Regress
module Explain = Abonn_trace.Explain
module Hotspots = Abonn_trace.Hotspots
module Campaign = Abonn_trace.Campaign
module Perfetto = Abonn_trace.Perfetto
module Registry = Abonn_trace.Registry
module Parse_error = Abonn_util.Parse_error

(* Uniform failure contract: an empty, missing or truncated-beyond-
   recovery input exits non-zero with a positioned diagnostic (the
   shared lib/util/parse_error format all front-ends use) — never an
   empty table with exit 0. *)
let positioned ?(line = 1) path fmt =
  Printf.ksprintf
    (fun msg ->
      Parse_error.to_string
        { Parse_error.source = path;
          pos = Parse_error.Line { line; col = 1 };
          token = "";
          msg })
    fmt

let load path =
  match Reader.read_file path with
  | events, issues -> Ok (events, issues)
  | exception Sys_error msg -> Error msg

let print_issues issues =
  if issues <> [] then begin
    Printf.eprintf "%d issue(s) while reading the trace:\n" (List.length issues);
    List.iter (fun i -> Printf.eprintf "  %s\n" (Reader.issue_to_string i)) issues;
    flush stderr
  end

let with_events path f =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok (events, issues) ->
    print_issues issues;
    if events = [] then
      `Error
        ( false,
          match issues with
          | [] -> positioned path "empty trace: no events"
          | i :: _ ->
            positioned ~line:(Reader.issue_line i) path
              "no parseable events (malformed or truncated beyond recovery)" )
    else f events

(* Select one run segment out of a (possibly multi-run) trace. *)
let nth_segment events n =
  let segs = Summary.segments events in
  match List.nth_opt segs (n - 1) with
  | Some seg -> Ok seg
  | None ->
    Error
      (Printf.sprintf "trace has %d run(s); --run %d is out of range" (List.length segs) n)

let with_segment path run f =
  with_events path (fun events ->
      match nth_segment events run with
      | Error msg -> `Error (false, msg)
      | Ok seg -> f seg)

let output_result out text =
  match out with
  | None ->
    print_string text;
    `Ok ()
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "written to: %s\n" path;
    `Ok ()

(* --- subcommands --- *)

(* A registry JSONL (results/registry.jsonl) is also line-oriented JSON
   but carries run records, not events; when the file parses as one,
   render the run table (including the schema-3 source_format column)
   instead of event analytics. *)
let registry_summary path =
  match Abonn_trace.Registry.load ~path () with
  | [], _ -> None
  | records, errors ->
    let rows =
      List.map
        (fun (r : Abonn_trace.Registry.record) ->
          [ r.Abonn_trace.Registry.engine; r.model; r.instance;
            string_of_int r.domains; r.source_format; r.verdict;
            Printf.sprintf "%.3f" r.wall; string_of_int r.calls;
            string_of_int r.nodes; string_of_int r.max_depth ])
        records
    in
    let table =
      Abonn_util.Table.render
        ~align:
          Abonn_util.Table.
            [ Left; Left; Left; Right; Left; Left; Right; Right; Right; Right ]
        ~header:
          [ "engine"; "model"; "instance"; "dom"; "source"; "verdict"; "wall";
            "calls"; "nodes"; "depth" ]
        rows
    in
    let footer =
      Printf.sprintf "\n%d record(s)%s\n" (List.length records)
        (if errors = [] then ""
         else Printf.sprintf ", %d unparseable line(s)" (List.length errors))
    in
    Some (table ^ footer)

let summary_cmd =
  let run file =
    match registry_summary file with
    | Some text ->
      print_string text;
      `Ok ()
    | None ->
      with_events file (fun events ->
          print_string (Summary.to_string (Summary.runs events));
          `Ok ())
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Per-run statistics reconstructed from the trace: engine, verdict, AppVer \
          calls, nodes, max depth, wall time.  Harness traces are cross-checked \
          against their run_finished ground truth.  Run-registry files \
          (results/registry.jsonl) are detected and rendered as a run table \
          with their source format.")
    Term.(ret (const run $ file))

let run_arg =
  Arg.(value & opt int 1
       & info [ "run" ] ~docv:"N" ~doc:"Analyse the N-th run of a multi-run trace.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let tree_cmd =
  let run file run_n dot max_nodes out =
    with_segment file run_n (fun seg ->
        let t = Tree.build seg in
        let text =
          match t.Tree.root with
          | Some root ->
            Tree.shape_to_string t.Tree.shape
            ^ "\n"
            ^ (if dot then Tree.render_dot ~max_nodes root
               else Tree.render_ascii ~max_nodes root)
          | None ->
            Tree.shape_to_string t.Tree.shape
            ^ "(no gamma-bearing events: baseline traces only carry the depth profile)\n"
        in
        output_result out text)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of ASCII.")
  in
  let max_nodes =
    Arg.(value & opt int 200
         & info [ "max-nodes" ] ~docv:"N" ~doc:"Stop rendering after N nodes.")
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:
         "Reconstruct the BaB tree from the trace's gamma strings and render it \
          (ASCII or Graphviz DOT), with shape statistics and a depth histogram.")
    Term.(ret (const run $ file $ run_arg $ dot $ max_nodes $ out_arg))

let phases_cmd =
  let run file run_n =
    with_segment file run_n (fun seg ->
        print_string (Phases.to_string (Phases.of_events seg));
        `Ok ())
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "phases"
       ~doc:
         "Attribute the run's wall time to AppVer bound computations, exact LP \
          solves, attacks and search overhead.")
    Term.(ret (const run $ file $ run_arg))

let curve_cmd =
  let run file run_n out =
    with_segment file run_n (fun seg ->
        output_result out (Curve.to_csv (Curve.of_events seg)))
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "curve"
       ~doc:
         "Anytime-progress curve as CSV: calls, nodes, max depth, frontier size and \
          best reward against trace time.")
    Term.(ret (const run $ file $ run_arg $ out_arg))

let diff_cmd =
  let run file_a file_b =
    match load file_a, load file_b with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok (ea, ia), Ok (eb, ib) ->
      print_issues ia;
      print_issues ib;
      let d = Diff.diff ea eb in
      print_string
        (Diff.to_string
           ~label_a:(Filename.remove_extension (Filename.basename file_a))
           ~label_b:(Filename.remove_extension (Filename.basename file_b))
           d);
      `Ok ()
  in
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE_A") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE_B") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two traces of the same instance (e.g. ABONN vs BaB-baseline): \
          nodes-to-verdict, visit-sequence divergence and per-phase deltas.")
    Term.(ret (const run $ file_a $ file_b))

let explain_cmd =
  let run file run_n vs vs_run =
    with_segment file run_n (fun seg ->
        match vs with
        | None ->
          print_string (Explain.to_string (Explain.of_events seg));
          `Ok ()
        | Some vs_file ->
          with_events vs_file (fun vs_events ->
              match nth_segment vs_events vs_run with
              | Error msg -> `Error (false, msg)
              | Ok vs_seg ->
                print_string (Explain.to_string (Explain.of_events ~vs:vs_seg seg));
                `Ok ()))
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let vs =
    Arg.(value & opt (some file) None
         & info [ "vs" ] ~docv:"TRACE_B"
             ~doc:
               "Second trace of the same instance; adds a policy-divergence \
                section (common visit prefix, first divergence, visit-set \
                overlap).")
  in
  let vs_run =
    Arg.(value & opt int 1
         & info [ "vs-run" ] ~docv:"N"
             ~doc:"Run to take from the $(b,--vs) trace (default 1).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Search-quality report: wasted-work fraction (nodes off the verdict \
          path), open-subtree share, per-depth exploration/exploitation balance \
          (from ucb_decision introspection events), reward-prediction error per \
          depth, and branching-decision margins.  With $(b,--vs), also where two \
          runs' visit orders diverge.")
    Term.(ret (const run $ file $ run_arg $ vs $ vs_run))

let hotspots_cmd =
  let run file run_n flame limit out =
    with_segment file run_n (fun seg ->
        let h = Hotspots.of_events seg in
        output_result out
          (if flame then Hotspots.to_flame h else Hotspots.to_string ~limit h))
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let flame =
    Arg.(value & flag
         & info [ "flame" ]
             ~doc:
               "Emit folded stacks (one $(i,engine;phase;depth;layer weight) \
                line per row, weights in microseconds) for flamegraph.pl, \
                inferno or speedscope instead of the ranked table.")
  in
  let limit =
    Arg.(value & opt int 30
         & info [ "limit" ] ~docv:"N" ~doc:"Show at most N table rows.")
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "Wall-time hotspots ranked by phase x tree-depth x warm-start layer: \
          which bound computations, exact LP checks and attacks the time went \
          to, and at which depths the propagator ran cold.")
    Term.(ret (const run $ file $ run_arg $ flame $ limit $ out_arg))

(* --- watch: live monitor over a growing trace --- *)

let watch_cmd =
  let run file interval calls max_seconds once =
    (* the trace file usually appears moments after the watcher starts
       (writer opens it lazily); wait rather than racing the writer *)
    let deadline = Unix.gettimeofday () +. Float.max max_seconds 10.0 in
    let rec wait_open () =
      match Reader.tail_open file with
      | tail -> Ok tail
      | exception Sys_error msg ->
        if Unix.gettimeofday () > deadline then Error msg
        else begin
          ignore (Unix.select [] [] [] 0.2);
          wait_open ()
        end
    in
    match wait_open () with
    | Error msg -> `Error (false, msg)
    | Ok tail ->
      let m = Monitor.create () in
      let tty = Unix.isatty Unix.stdout in
      let started = Unix.gettimeofday () in
      let issues = ref [] in
      let draw () =
        if tty then print_string "\027[2J\027[H";
        print_string (Monitor.render ?calls_budget:calls m);
        if !issues <> [] then
          Printf.printf "\n%d trace issue(s); first: %s\n" (List.length !issues)
            (Reader.issue_to_string (List.hd (List.rev !issues)));
        flush stdout
      in
      let rec loop () =
        issues := !issues @ Reader.tail_poll tail ~f:(Monitor.feed m);
        draw ();
        let timed_out =
          max_seconds > 0.0 && Unix.gettimeofday () -. started >= max_seconds
        in
        if Monitor.finished m || once || timed_out then begin
          Reader.tail_close tail;
          if (not (Monitor.finished m)) && timed_out && not once then
            Printf.printf "\nwatch: --max-seconds elapsed before the run finished\n";
          `Ok ()
        end
        else begin
          ignore (Unix.select [] [] [] interval);
          loop ()
        end
      in
      loop ()
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE" ~doc:"Trace file being written by a live run.")
  in
  let interval =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll/refresh interval.")
  in
  let calls =
    Arg.(value & opt (some int) None
         & info [ "calls" ] ~docv:"N"
             ~doc:"The run's AppVer-call budget; enables the ETA line.")
  in
  let max_seconds =
    Arg.(value & opt float 0.0
         & info [ "max-seconds" ] ~docv:"SECONDS"
             ~doc:"Stop watching after this long (0 = until the run finishes).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render a single snapshot of the trace so far and exit.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Live dashboard over a trace that is still being written: node \
          throughput, depth histogram, phase split, memory curve from \
          resource_sample events, and a budget ETA.  Exits when the traced run \
          finishes.")
    Term.(ret (const run $ file $ interval $ calls $ max_seconds $ once))

(* --- bench: performance regression gate --- *)

(* "SUFFIX:PCT" -> (suffix, max_pct), e.g. "flight:2" or "i16:5" *)
let overhead_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 ->
      let suffix = String.sub s 0 i in
      let pct = String.sub s (i + 1) (String.length s - i - 1) in
      (match float_of_string_opt pct with
       | Some p when p >= 0.0 -> Ok (suffix, p)
       | _ -> Error (`Msg (Printf.sprintf "bad overhead bound %S" pct)))
    | _ -> Error (`Msg (Printf.sprintf "expected SUFFIX:PCT, got %S" s))
  in
  let print ppf (suffix, pct) = Format.fprintf ppf "%s:%g" suffix pct in
  Arg.conv (parse, print)

let bench_cmd =
  let run fresh against max_regress scale_baseline bench_exe keep overhead =
    let fresh_path, cleanup =
      match fresh with
      | Some path -> (path, fun () -> ())
      | None ->
        let tmp = Filename.temp_file "abonn_bench" ".json" in
        let cmd = Printf.sprintf "%s --json %s" (Filename.quote bench_exe) (Filename.quote tmp) in
        Printf.printf "running: %s\n%!" cmd;
        if Sys.command cmd <> 0 then begin
          Sys.remove tmp;
          prerr_endline "bench run failed";
          exit 2
        end;
        (tmp, fun () -> if not keep then Sys.remove tmp)
    in
    match (Regress.load_file against, Regress.load_file fresh_path) with
    | Error msg, _ | _, Error msg ->
      cleanup ();
      `Error (false, msg)
    | Ok baseline, Ok fresh ->
      let report =
        Regress.compare_benches ~scale_baseline ~max_regress ~baseline ~fresh ()
      in
      (match (baseline.Regress.commit, fresh.Regress.commit) with
       | Some b, Some f -> Printf.printf "baseline commit %s, fresh commit %s\n" b f
       | _ -> ());
      print_string (Regress.report_to_string ~max_regress report);
      let overhead_ok =
        List.for_all
          (fun (suffix, max_pct) ->
            let r = Regress.check_overhead ~suffix ~max_pct fresh in
            print_newline ();
            print_string (Regress.overhead_to_string r);
            r.Regress.overhead_ok)
          overhead
      in
      cleanup ();
      if report.Regress.ok && overhead_ok then `Ok () else exit 1
  in
  let fresh =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FRESH"
             ~doc:"Fresh bench JSON to gate.  Omitted: run $(b,--bench-exe) first.")
  in
  let against =
    Arg.(value & opt file "BENCH_bab_nodes.json"
         & info [ "against" ] ~docv:"BASELINE" ~doc:"Committed baseline JSON.")
  in
  let max_regress =
    Arg.(value & opt float 20.0
         & info [ "max-regress" ] ~docv:"PCT"
             ~doc:"Maximum tolerated throughput drop below the baseline, percent.")
  in
  let scale_baseline =
    Arg.(value & opt float 1.0
         & info [ "scale-baseline" ] ~docv:"FACTOR"
             ~doc:
               "Multiply baseline numbers first (CI uses 10 as a synthetic \
                must-fail check of the gate itself).")
  in
  let bench_exe =
    Arg.(value & opt string "_build/default/bench/bab_nodes.exe"
         & info [ "bench-exe" ] ~docv:"EXE"
             ~doc:"Bench binary to produce FRESH when it is not given.")
  in
  let keep =
    Arg.(value & flag
         & info [ "keep" ] ~doc:"Keep the temporary fresh-run JSON file.")
  in
  let overhead =
    Arg.(value & opt_all overhead_conv []
         & info [ "overhead" ] ~docv:"SUFFIX:PCT"
             ~doc:
               "Also gate instrumentation overhead inside the fresh file: every \
                $(i,name@SUFFIX) row must be within PCT percent of its \
                $(i,name) base row's throughput (repeatable, e.g. \
                $(b,--overhead flight:2 --overhead i16:5)).  Fails if no such \
                rows exist.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Performance regression gate: compare a fresh bab_nodes bench run \
          against the committed baseline (per-instance cached nodes/sec, geomean \
          speedup, peak RSS columns) and exit non-zero if any instance drops more \
          than $(b,--max-regress) percent.")
    Term.(
      ret
        (const run $ fresh $ against $ max_regress $ scale_baseline $ bench_exe
         $ keep $ overhead))

(* --- report: campaign analytics over the run registry --- *)

let default_registries = function [] -> [ Registry.default_path ] | l -> l

(* Shared campaign ingestion: positioned issues to stderr; an empty or
   all-malformed registry is a positioned hard error, not a blank page. *)
let load_campaign registries =
  let registries = default_registries registries in
  match Campaign.load registries with
  | Error msg -> Error msg
  | Ok t ->
    List.iter
      (fun (i : Campaign.issue) ->
        Printf.eprintf "%s\n" (positioned ~line:i.Campaign.line i.Campaign.file "%s" i.Campaign.msg))
      t.Campaign.issues;
    if t.Campaign.issues <> [] then flush stderr;
    if t.Campaign.records = [] then
      Error
        (match t.Campaign.issues with
         | [] -> positioned (List.hd registries) "empty registry: no run records"
         | i :: _ ->
           positioned ~line:i.Campaign.line i.Campaign.file
             "no parseable run records (malformed or truncated beyond recovery)")
    else Ok t

let registries_opt_arg =
  Arg.(value & opt_all string []
       & info [ "registry" ] ~docv:"FILE"
           ~doc:
             "Registry JSONL file to ingest (repeatable; default \
              results/registry.jsonl).  Any mix of record schemas 1-3 is \
              accepted.")

let report_cmd =
  let run registries against commit fmt_s budget trace_base trace_head out =
    match Campaign.format_of_string fmt_s with
    | None ->
      `Error (true, Printf.sprintf "unknown --format %S (expected md, csv or svg)" fmt_s)
    | Some fmt ->
      (match load_campaign registries with
       | Error msg -> `Error (false, msg)
       | Ok t ->
         let trace_pair =
           match (trace_base, trace_head) with
           | None, None -> Ok None
           | Some _, None | None, Some _ ->
             Error "--trace-base and --trace-head must be given together"
           | Some base_path, Some head_path ->
             (match (load base_path, load head_path) with
              | Error msg, _ | _, Error msg -> Error msg
              | Ok (base, bi), Ok (head, hi) ->
                print_issues bi;
                print_issues hi;
                if base = [] then Error (positioned base_path "empty trace: no events")
                else if head = [] then
                  Error (positioned head_path "empty trace: no events")
                else Ok (Some (Campaign.trace_attribute ~base ~head)))
         in
         (match trace_pair with
          | Error msg -> `Error (false, msg)
          | Ok trace_pair ->
            (match Campaign.report ?against ?trace_pair ?budget:budget ?commit t fmt with
             | Error msg -> `Error (false, msg)
             | Ok text -> output_result out text)))
  in
  let against =
    Arg.(value & opt (some string) None
         & info [ "against" ] ~docv:"COMMIT"
             ~doc:
               "Attribute the head commit's changes against this base commit: \
                per-run wall-time deltas joined on (engine, model, instance, \
                seed, domains, source format), newly solved/unsolved counts.")
  in
  let commit =
    Arg.(value & opt (some string) None
         & info [ "commit" ] ~docv:"COMMIT"
             ~doc:"Report this commit's runs (default: the newest commit).")
  in
  let fmt =
    Arg.(value & opt string "md"
         & info [ "format" ] ~docv:"FMT"
             ~doc:
               "$(b,md) renders the full report (PAR-2, cactus quantiles, \
                engine x family matrix, cross-commit trend, attribution); \
                $(b,csv) and $(b,svg) render the cactus curves.")
  in
  let budget =
    Arg.(value & opt (some float) None
         & info [ "par-budget" ] ~docv:"SECONDS"
             ~doc:
               "PAR-2 budget (unsolved runs cost twice this).  Default: the \
                longest wall time in the selection, since the registry records \
                no per-run budget.")
  in
  let trace_base =
    Arg.(value & opt (some file) None
         & info [ "trace-base" ] ~docv:"TRACE"
             ~doc:
               "Base-commit trace of one instance; with $(b,--trace-head), adds \
                a phase-level attribution naming the dominant slower phase.")
  in
  let trace_head =
    Arg.(value & opt (some file) None
         & info [ "trace-head" ] ~docv:"TRACE" ~doc:"Head-commit trace paired with $(b,--trace-base).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Campaign analytics over the run registry: solved-vs-time cactus \
          curves, PAR-2 scores, per-engine x per-family win/loss matrix, \
          cross-commit trends, and — with $(b,--against) — a \"why did this \
          commit get slower\" attribution.  Output is deterministic and \
          byte-stable, suitable for golden tests and CI artifacts.")
    Term.(
      ret
        (const run $ registries_opt_arg $ against $ commit $ fmt $ budget
         $ trace_base $ trace_head $ out_arg))

(* --- export: trace-event (Perfetto / chrome://tracing) exporter --- *)

let export_cmd =
  let run file perfetto out =
    if not perfetto then
      `Error (true, "export: no target format given (use --perfetto)")
    else with_events file (fun events -> output_result out (Perfetto.to_string events))
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let perfetto =
    Arg.(value & flag
         & info [ "perfetto" ]
             ~doc:
               "Chrome trace-event JSON: span events become duration slices, \
                domain tags become named thread tracks, resource_sample becomes \
                counter tracks.  Open in ui.perfetto.dev or chrome://tracing.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Convert a trace to an external viewer format.  Currently \
          $(b,--perfetto) (trace-event JSON for the Perfetto UI / \
          chrome://tracing / speedscope).")
    Term.(ret (const run $ file $ perfetto $ out_arg))

(* --- registry: inspect and maintain the run registry --- *)

let registry_files_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"FILE"
           ~doc:"Registry JSONL files (default results/registry.jsonl).")

let registry_ls_cmd =
  let run files =
    match load_campaign files with
    | Error msg -> `Error (false, msg)
    | Ok t ->
      let rows =
        List.map
          (fun (r : Registry.record) ->
            [ r.Registry.ts; r.commit; string_of_int r.schema; r.engine; r.model;
              r.instance; string_of_int r.domains; r.source_format; r.verdict;
              Printf.sprintf "%.3f" r.wall ])
          t.Campaign.records
      in
      print_string
        (Abonn_util.Table.render
           ~align:
             Abonn_util.Table.
               [ Left; Left; Right; Left; Left; Left; Right; Left; Left; Right ]
           ~header:
             [ "ts"; "commit"; "sch"; "engine"; "model"; "instance"; "dom";
               "source"; "verdict"; "wall" ]
           rows);
      Printf.printf "\n%d record(s), %d commit(s)\n"
        (List.length t.Campaign.records)
        (List.length (Campaign.commits t));
      `Ok ()
  in
  Cmd.v
    (Cmd.info "ls"
       ~doc:
         "List every registry record (all schemas) across the given files, \
          with append time, commit and source format.")
    Term.(ret (const run $ registry_files_arg))

let registry_lint_cmd =
  let run files gc =
    let files = default_registries files in
    match Registry.lint files with
    | exception Sys_error msg -> `Error (false, msg)
    | report ->
      print_string (Registry.lint_report_to_string report);
      if report.Registry.lines = 0 then
        `Error (false, positioned (List.hd files) "empty registry: no run records")
      else if gc then begin
        List.iter
          (fun f ->
            let kept, dropped = Registry.gc f in
            Printf.printf "%s: kept %d record(s), dropped %d line(s)\n" f kept dropped)
          files;
        `Ok ()
      end
      else if report.Registry.lint_issues = [] then `Ok ()
      else exit 1
  in
  let gc =
    Arg.(value & flag
         & info [ "gc" ]
             ~doc:
               "Dedup-compact each file in place: keep the first occurrence of \
                every distinct record with its original bytes, drop malformed \
                lines and later duplicates (atomic rewrite via a .tmp sibling).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "One pass over any mix of schema-1/2/3 registry files reporting \
          malformed lines, duplicate records and records whose commit/ts \
          stamp is unusable for cross-commit joins.  Exits non-zero when \
          issues are found (unless $(b,--gc) repairs them).")
    Term.(ret (const run $ registry_files_arg $ gc))

let registry_cmd =
  Cmd.group
    (Cmd.info "registry"
       ~doc:
         "Inspect and maintain the append-only run registry \
          (results/registry.jsonl): $(b,ls) lists records, $(b,lint) reports \
          malformed/duplicate/unstamped lines and $(b,lint --gc) compacts.")
    [ registry_ls_cmd; registry_lint_cmd ]

let cmd =
  let doc = "analytics over ABONN JSONL traces" in
  Cmd.group (Cmd.info "abonn_trace" ~doc)
    [ summary_cmd; tree_cmd; phases_cmd; curve_cmd; diff_cmd; explain_cmd;
      hotspots_cmd; watch_cmd; bench_cmd; report_cmd; export_cmd; registry_cmd ]

let () = exit (Cmd.eval cmd)
