(* abonn_trace: offline analytics over --trace JSONL files.

   Examples:
     abonn_trace summary run.jsonl
     abonn_trace tree run.jsonl --dot -o tree.dot
     abonn_trace phases run.jsonl
     abonn_trace curve run.jsonl -o curve.csv
     abonn_trace diff abonn.jsonl baseline.jsonl

   Schema: docs/TRACE_SCHEMA.md; analytics: lib/trace. *)

open Cmdliner
module Reader = Abonn_trace.Reader
module Summary = Abonn_trace.Summary
module Tree = Abonn_trace.Tree
module Phases = Abonn_trace.Phases
module Curve = Abonn_trace.Curve
module Diff = Abonn_trace.Diff

let load path =
  match Reader.read_file path with
  | events, issues -> Ok (events, issues)
  | exception Sys_error msg -> Error msg

let print_issues issues =
  if issues <> [] then begin
    Printf.eprintf "%d issue(s) while reading the trace:\n" (List.length issues);
    List.iter (fun i -> Printf.eprintf "  %s\n" (Reader.issue_to_string i)) issues;
    flush stderr
  end

let with_events path f =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok (events, issues) ->
    print_issues issues;
    if events = [] then `Error (false, Printf.sprintf "%s: no parseable events" path)
    else f events

(* Select one run segment out of a (possibly multi-run) trace. *)
let nth_segment events n =
  let segs = Summary.segments events in
  match List.nth_opt segs (n - 1) with
  | Some seg -> Ok seg
  | None ->
    Error
      (Printf.sprintf "trace has %d run(s); --run %d is out of range" (List.length segs) n)

let with_segment path run f =
  with_events path (fun events ->
      match nth_segment events run with
      | Error msg -> `Error (false, msg)
      | Ok seg -> f seg)

let output_result out text =
  match out with
  | None ->
    print_string text;
    `Ok ()
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "written to: %s\n" path;
    `Ok ()

(* --- subcommands --- *)

let summary_cmd =
  let run file =
    with_events file (fun events ->
        print_string (Summary.to_string (Summary.runs events));
        `Ok ())
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Per-run statistics reconstructed from the trace: engine, verdict, AppVer \
          calls, nodes, max depth, wall time.  Harness traces are cross-checked \
          against their run_finished ground truth.")
    Term.(ret (const run $ file))

let run_arg =
  Arg.(value & opt int 1
       & info [ "run" ] ~docv:"N" ~doc:"Analyse the N-th run of a multi-run trace.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let tree_cmd =
  let run file run_n dot max_nodes out =
    with_segment file run_n (fun seg ->
        let t = Tree.build seg in
        let text =
          match t.Tree.root with
          | Some root ->
            Tree.shape_to_string t.Tree.shape
            ^ "\n"
            ^ (if dot then Tree.render_dot ~max_nodes root
               else Tree.render_ascii ~max_nodes root)
          | None ->
            Tree.shape_to_string t.Tree.shape
            ^ "(no gamma-bearing events: baseline traces only carry the depth profile)\n"
        in
        output_result out text)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of ASCII.")
  in
  let max_nodes =
    Arg.(value & opt int 200
         & info [ "max-nodes" ] ~docv:"N" ~doc:"Stop rendering after N nodes.")
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:
         "Reconstruct the BaB tree from the trace's gamma strings and render it \
          (ASCII or Graphviz DOT), with shape statistics and a depth histogram.")
    Term.(ret (const run $ file $ run_arg $ dot $ max_nodes $ out_arg))

let phases_cmd =
  let run file run_n =
    with_segment file run_n (fun seg ->
        print_string (Phases.to_string (Phases.of_events seg));
        `Ok ())
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "phases"
       ~doc:
         "Attribute the run's wall time to AppVer bound computations, exact LP \
          solves, attacks and search overhead.")
    Term.(ret (const run $ file $ run_arg))

let curve_cmd =
  let run file run_n out =
    with_segment file run_n (fun seg ->
        output_result out (Curve.to_csv (Curve.of_events seg)))
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "curve"
       ~doc:
         "Anytime-progress curve as CSV: calls, nodes, max depth, frontier size and \
          best reward against trace time.")
    Term.(ret (const run $ file $ run_arg $ out_arg))

let diff_cmd =
  let run file_a file_b =
    match load file_a, load file_b with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok (ea, ia), Ok (eb, ib) ->
      print_issues ia;
      print_issues ib;
      let d = Diff.diff ea eb in
      print_string
        (Diff.to_string
           ~label_a:(Filename.remove_extension (Filename.basename file_a))
           ~label_b:(Filename.remove_extension (Filename.basename file_b))
           d);
      `Ok ()
  in
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE_A") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE_B") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two traces of the same instance (e.g. ABONN vs BaB-baseline): \
          nodes-to-verdict, visit-sequence divergence and per-phase deltas.")
    Term.(ret (const run $ file_a $ file_b))

let cmd =
  let doc = "analytics over ABONN JSONL traces" in
  Cmd.group (Cmd.info "abonn_trace" ~doc)
    [ summary_cmd; tree_cmd; phases_cmd; curve_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)
