(* abonn_fuzz: deterministic differential fuzzing of the BaB stack.

   Examples:
     abonn_fuzz --seed 1 --cases 200 --oracle all
     abonn_fuzz --seed 7 --cases 50 --oracle bounds,engines --out repros/
     abonn_fuzz --replay repro.problem --family exact --seed 123
     abonn_fuzz --export-corpus test/fixtures/fuzz

   Oracles and shrinking: lib/check; findings log schema follows
   docs/TRACE_SCHEMA.md string conventions (ev = "fuzz_finding"). *)

open Cmdliner
module Obs = Abonn_obs.Obs
module Sink = Abonn_obs.Sink
module Check = Abonn_check
module Oracle = Abonn_check.Oracle
module Campaign = Abonn_check.Campaign
module Finding = Abonn_check.Finding
module Registry = Abonn_trace.Registry

let parse_families s =
  if String.trim s = "all" then Ok Oracle.all_families
  else
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match Oracle.family_of_string p with
        | Some f -> go (f :: acc) rest
        | None ->
          Error
            (Printf.sprintf
               "unknown oracle family %S (expected all, sampling, bounds, exact, \
                engines, cert, incremental, lp or formats)"
               p))
    in
    go [] parts

let with_sinks ~trace_file ~findings_file f =
  let trace_sink = Option.map Sink.jsonl_file trace_file in
  Option.iter Obs.install trace_sink;
  let findings_oc = Option.map open_out findings_file in
  let log_finding finding =
    match findings_oc with
    | Some oc ->
      output_string oc (Finding.to_json finding);
      output_char oc '\n';
      flush oc
    | None -> ()
  in
  let finally () =
    Option.iter
      (fun s ->
        Obs.remove s;
        s.Sink.close ())
      trace_sink;
    Option.iter close_out findings_oc
  in
  Fun.protect ~finally (fun () -> f log_finding)

let run_campaign seed cases families minimize out_dir trace_file findings_file
    samples engine_budget quiet registry =
  let oracle =
    { Oracle.default_config with Oracle.samples; engine_budget }
  in
  let cfg =
    { Campaign.seed; cases; families; minimize; out_dir; oracle }
  in
  let started = Unix.gettimeofday () in
  let outcome =
    with_sinks ~trace_file ~findings_file (fun log_finding ->
        let on_case (case : Check.Gen.case) =
          if not quiet then begin
            Printf.printf "case %4d  seed %-20d %s\n" case.Check.Gen.index
              case.Check.Gen.seed case.Check.Gen.descr;
            flush stdout
          end
        in
        let on_finding finding =
          log_finding finding;
          Format.printf "%a@." Finding.pp finding
        in
        Campaign.run ~on_finding ~on_case cfg)
  in
  let findings_n = List.length outcome.Campaign.findings in
  Printf.printf "%d case(s), %d oracle check(s), %d finding(s)\n"
    outcome.Campaign.cases_run outcome.Campaign.checks_run findings_n;
  (* one campaign-summary line in the run registry, so nightly fuzz runs
     show up in cross-commit trend reports (abonn_trace report) *)
  Option.iter
    (fun path ->
      let record =
        Registry.make ~engine:"fuzz"
          ~model:(String.concat "," (List.map Oracle.family_name families))
          ~instance:(Printf.sprintf "campaign_seed%d" seed)
          ~seed ~domains:1 ~source_format:"synthetic"
          ~verdict:
            (if findings_n = 0 then "ok"
             else Printf.sprintf "findings:%d" findings_n)
          ~wall:(Unix.gettimeofday () -. started)
          ~calls:outcome.Campaign.checks_run ~nodes:outcome.Campaign.cases_run
          ~max_depth:0 ()
      in
      Registry.append ~path record;
      Printf.printf "registry record appended to: %s\n" path)
    registry;
  if outcome.Campaign.findings = [] then `Ok () else exit 1

let run_replay path family_str seed samples engine_budget =
  match Oracle.family_of_string family_str with
  | None -> `Error (false, Printf.sprintf "unknown oracle family %S" family_str)
  | Some family -> (
    let config = { Oracle.default_config with Oracle.samples; engine_budget } in
    match Campaign.replay_file ~config ~seed ~family path with
    | Oracle.Pass ->
      Printf.printf "PASS %s on %s\n" (Oracle.family_name family) path;
      `Ok ()
    | Oracle.Fail f ->
      Printf.printf "FAIL %s on %s\n  %s: %s\n" (Oracle.family_name family) path
        f.Oracle.check f.Oracle.detail;
      exit 1
    | exception Sys_error msg -> `Error (false, msg))

let run_export dir seed =
  match Campaign.export_corpus ~seed ~dir () with
  | entries ->
    List.iter
      (fun (file, family, case_seed) ->
        Printf.printf "wrote %s (%s, seed %d)\n" file (Oracle.family_name family)
          case_seed)
      entries;
    Printf.printf "manifest: %s\n" (Filename.concat dir "corpus.txt");
    `Ok ()
  | exception Failure msg -> `Error (false, msg)

let main seed cases oracle_str minimize out_dir trace_file findings_file samples
    engine_budget quiet replay family export_corpus registry =
  match (replay, export_corpus) with
  | Some path, None -> run_replay path family seed samples engine_budget
  | None, Some dir -> run_export dir seed
  | Some _, Some _ -> `Error (true, "--replay and --export-corpus are exclusive")
  | None, None -> (
    match parse_families oracle_str with
    | Error msg -> `Error (true, msg)
    | Ok families ->
      run_campaign seed cases families minimize out_dir trace_file findings_file
        samples engine_budget quiet registry)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let cases_arg =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"K" ~doc:"Number of generated cases.")

let oracle_arg =
  Arg.(
    value
    & opt string "all"
    & info [ "oracle" ] ~docv:"FAMILIES"
        ~doc:
          "Oracle families to run: $(b,all) or a comma-separated subset of \
           $(b,sampling), $(b,bounds), $(b,exact), $(b,engines), $(b,cert), \
           $(b,incremental), $(b,lp), $(b,formats).")

let minimize_arg =
  Arg.(
    value & opt bool true
    & info [ "minimize" ] ~docv:"BOOL"
        ~doc:"Shrink failing cases to a minimal reproducer before reporting.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Directory for minimal repro files (default: a fresh temp dir).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL trace of the campaign (schema: docs/TRACE_SCHEMA.md).")

let findings_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "findings" ] ~docv:"FILE"
        ~doc:"Append findings as JSONL (one fuzz_finding object per line).")

let samples_arg =
  Arg.(
    value & opt int Oracle.default_config.Oracle.samples
    & info [ "samples" ] ~docv:"N" ~doc:"Sampled points per case for the oracles.")

let budget_arg =
  Arg.(
    value & opt int Oracle.default_config.Oracle.engine_budget
    & info [ "engine-budget" ] ~docv:"CALLS"
        ~doc:"AppVer call budget for each engine run inside the oracles.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Do not print per-case progress lines.")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay one problem file through a single oracle family and exit.")

let family_arg =
  Arg.(
    value & opt string "sampling"
    & info [ "family" ] ~docv:"FAMILY" ~doc:"Oracle family for $(b,--replay).")

let export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export-corpus" ] ~docv:"DIR"
        ~doc:
          "Regenerate the committed fuzz corpus: one minimized, oracle-passing \
           problem per family plus a corpus.txt manifest.")

let registry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "registry" ] ~docv:"FILE"
        ~doc:
          "Append one campaign-summary record (engine $(b,fuzz), cases as nodes, \
           checks as calls, verdict $(b,ok) or $(b,findings:N)) to this run \
           registry, so fuzz campaigns appear in $(b,abonn_trace report) trends.")

let cmd =
  let doc = "deterministic differential fuzzing of the ABONN verification stack" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Generates small verification problems from a campaign seed, checks them \
         against sampling, bound-lattice, exact-enumeration, cross-engine and \
         certificate oracles, and shrinks any failure to a minimal reproducer that \
         is serialized, re-loaded and re-checked before being reported.";
      `P "Exit status is non-zero when any finding is reported.";
      `S Manpage.s_see_also;
      `P "docs/TESTING.md for the test pyramid and fixture promotion workflow." ]
  in
  Cmd.v
    (Cmd.info "abonn_fuzz" ~doc ~man)
    Term.(
      ret
        (const main $ seed_arg $ cases_arg $ oracle_arg $ minimize_arg $ out_arg
       $ trace_arg $ findings_arg $ samples_arg $ budget_arg $ quiet_arg
       $ replay_arg $ family_arg $ export_arg $ registry_arg))

let () = exit (Cmd.eval cmd)
