(* experiments: regenerate every table and figure of the paper's §V.

   Usage:
     experiments -- all                    (everything, default budgets)
     experiments -- table1 fig3 table2
     experiments --quick -- table2         (small suite, small budgets)

   Artifacts map (DESIGN.md §3):
     table1 -> Table I, fig3 -> Fig. 3, table2+fig4 -> RQ1,
     fig5 -> RQ2, fig6 -> RQ3, ablation -> extension. *)

open Cmdliner
module Experiment = Abonn_harness.Experiment
module Report = Abonn_harness.Report
module Obs = Abonn_obs.Obs
module Sink = Abonn_obs.Sink
module Registry = Abonn_trace.Registry
module Runner = Abonn_harness.Runner
module Instances = Abonn_data.Instances
module Verdict = Abonn_spec.Verdict
module Result = Abonn_bab.Result

(* Regenerate-able outputs (raw CSVs) land here, out of version control. *)
let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Unix.mkdir results_dir 0o755

type settings = {
  instances_per_model : int;
  rq1_calls : int;
  rq2_calls : int;
  rq2_instances : int;
  epochs : int;
}

let full = { instances_per_model = 8; rq1_calls = 600; rq2_calls = 120; rq2_instances = 2; epochs = 15 }

let quick = { instances_per_model = 4; rq1_calls = 200; rq2_calls = 100; rq2_instances = 2; epochs = 8 }

let known =
  [ "table1"; "fig3"; "table2"; "fig4"; "fig5"; "fig6"; "ablation"; "deepviolated"; "all" ]

let run quick_mode progress artifacts =
  let artifacts = if artifacts = [] then [ "all" ] else artifacts in
  match List.find_opt (fun a -> not (List.mem a known)) artifacts with
  | Some bad ->
    `Error (false, Printf.sprintf "unknown artifact %s (known: %s)" bad (String.concat ", " known))
  | None ->
    let heartbeat = Option.map (fun every -> Sink.progress ~every ()) progress in
    Option.iter Obs.install heartbeat;
    Fun.protect ~finally:(fun () ->
        Option.iter
          (fun s ->
            Obs.remove s;
            s.Sink.close ())
          heartbeat)
    @@ fun () ->
    let s = if quick_mode then quick else full in
    let wants a = List.mem a artifacts || List.mem "all" artifacts in
    let t0 = Unix.gettimeofday () in
    Printf.printf "building benchmark suite (5 models x %d instances)...\n%!"
      s.instances_per_model;
    let suite =
      Experiment.build_suite ~instances_per_model:s.instances_per_model ~epochs:s.epochs ()
    in
    Printf.printf "suite ready: %d instances (%.1fs)\n\n%!"
      (List.length suite.Experiment.instances)
      (Unix.gettimeofday () -. t0);
    if wants "table1" then print_endline (Report.table1 (Experiment.table1 suite));
    let rq1 = lazy (Experiment.rq1 ~calls:s.rq1_calls suite) in
    if wants "fig3" then print_endline (Report.fig3 (Experiment.fig3 (Lazy.force rq1)));
    if wants "table2" then begin
      print_endline (Report.table2 (Experiment.table2 (Lazy.force rq1)));
      ensure_results_dir ();
      let csv_path = Filename.concat results_dir "results.csv" in
      let oc = open_out csv_path in
      output_string oc (Report.csv (Lazy.force rq1).Experiment.records);
      close_out oc;
      Printf.printf "(raw records written to %s)\n\n%!" csv_path
    end;
    if wants "fig4" then print_endline (Report.fig4 (Experiment.fig4 (Lazy.force rq1)));
    if wants "fig5" then
      print_endline
        (Report.fig5
           (Experiment.rq2 ~calls:s.rq2_calls ~max_instances:s.rq2_instances suite));
    if wants "fig6" then print_endline (Report.fig6 (Experiment.rq3 (Lazy.force rq1)));
    if wants "ablation" then
      print_endline
        (Report.ablation
           (Experiment.ablation ~calls:s.rq2_calls ~max_instances:s.rq2_instances suite));
    if wants "deepviolated" then begin
      print_endline "mining deep-violation instances (attack-boundary screening)...";
      print_endline
        (Report.deepviolated
           (Experiment.deepviolated
              ~screen_calls:(if quick_mode then 400 else 1500)
              ~pool_per_model:(if quick_mode then 6 else 16)
              ()))
    end;
    (* every (engine × instance) run of the sweep goes into the campaign
       registry, one self-contained line per run (keyed by commit) *)
    if Lazy.is_val rq1 then begin
      ensure_results_dir ();
      let records = (Lazy.force rq1).Experiment.records in
      List.iter
        (fun (r : Runner.record) ->
          Registry.append
            (* the harness sweep pins domains to the library default,
               which is 1 unless ABONN_DOMAINS overrides it *)
            (Registry.make ~domains:(Abonn_par.Pool.default_domains ())
               ~source_format:"synthetic" ~engine:r.Runner.engine
               ~model:r.Runner.instance.Instances.model
               ~instance:r.Runner.instance.Instances.id
               ~seed:r.Runner.instance.Instances.index
               ~verdict:(Verdict.to_string r.Runner.result.Result.verdict)
               ~wall:r.Runner.result.Result.stats.Result.wall_time
               ~calls:r.Runner.result.Result.stats.Result.appver_calls
               ~nodes:r.Runner.result.Result.stats.Result.nodes
               ~max_depth:r.Runner.result.Result.stats.Result.max_depth ()))
        records;
      Printf.printf "(%d run records appended to %s)\n%!" (List.length records)
        Registry.default_path
    end;
    Printf.printf "total experiment time: %.1fs\n%!" (Unix.gettimeofday () -. t0);
    `Ok ()

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small suite and budgets (CI-sized run).")

let progress_arg =
  Arg.(value & opt ~vopt:(Some 5.0) (some float) None
       & info [ "progress" ] ~docv:"SECS"
           ~doc:"Live single-line heartbeat on stderr while the sweep runs, refreshed \
                 every $(docv) seconds (default 5).")

let artifacts_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ARTIFACT" ~doc:"Artifacts to regenerate.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(ret (const run $ quick_arg $ progress_arg $ artifacts_arg))

let () = exit (Cmd.eval cmd)
