(* abonn: verify a local-robustness problem from the benchmark zoo.

   Examples:
     abonn --model mnist_l2 --index 3 --eps 0.02
     abonn --model cifar_base --index 0 --factor 1.1 --engine bab-baseline
     abonn --model mnist_l4 --index 1 --factor 1.2 --lambda 0.7 --c 0.5
     abonn --model mnist_l2 --index 3 --trace out.jsonl --stats *)

open Cmdliner
module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Synth = Abonn_data.Synth
module Trainer = Abonn_nn.Trainer
module Budget = Abonn_util.Budget
module Result = Abonn_bab.Result
module Verdict = Abonn_spec.Verdict
module Obs = Abonn_obs.Obs
module Sink = Abonn_obs.Sink
module Metrics = Abonn_obs.Metrics
module Introspect = Abonn_obs.Introspect
module Registry = Abonn_trace.Registry

let build_problem trained index eps factor =
  let dataset = trained.Models.dataset in
  let samples = dataset.Synth.test in
  if index < 0 || index >= Array.length samples then
    `Error (false, Printf.sprintf "--index must be in [0, %d)" (Array.length samples))
  else begin
    let sample = samples.(index) in
    let center = sample.Trainer.features in
    let label = sample.Trainer.label in
    if Abonn_nn.Network.predict trained.Models.network center <> label then
      `Error (false, Printf.sprintf "test image %d is misclassified; pick another" index)
    else begin
      let affine = Abonn_nn.Affine.of_network trained.Models.network in
      let num_classes = dataset.Synth.num_classes in
      let eps =
        match eps with
        | Some e -> e
        | None ->
          let r = Instances.certified_radius ~affine ~center ~label ~num_classes in
          r *. factor
      in
      let region = Abonn_spec.Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps () in
      let property = Abonn_spec.Property.robustness ~num_classes ~label in
      `Ok (Abonn_spec.Problem.of_affine ~affine ~region ~property (), eps)
    end
  end

(* Install the requested observability around [f]: a JSONL sink for
   [--trace FILE], a live heartbeat for [--progress], the metrics
   registry for [--stats] and the always-on flight recorder.  Sinks are
   removed and closed even if [f] raises; printing the [--stats]
   summary is left to the caller (after the verdict lines). *)
let with_observability ~trace_file ~progress ~stats ~flight f =
  let sinks =
    List.filter_map Fun.id
      [ Option.map Sink.jsonl_file trace_file;
        Option.map (fun every -> Sink.progress ~every ()) progress;
        Option.map fst flight ]
  in
  if stats then begin
    Metrics.reset ();
    Metrics.set_enabled true
  end;
  List.iter Obs.install sinks;
  let finally () =
    List.iter
      (fun s ->
        Obs.remove s;
        s.Sink.close ())
      sinks
  in
  Fun.protect ~finally f

(* The flight recorder keeps the last few thousand events in memory at
   all times; on SIGINT/SIGTERM or a timeout verdict the ring is dumped
   to JSONL so there is something to debug post-mortem even when the
   run had no [--trace].  Dumping from the signal handler is safe: the
   ring holds immutable, already-stamped envelopes. *)
let install_flight_handlers (_, fl) path =
  let dump_and_exit signal_name code _ =
    (try Sink.flight_dump fl path with _ -> ());
    Printf.eprintf "\n%s: flight recorder dumped to %s\n%!" signal_name path;
    exit code
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (dump_and_exit "SIGINT" 130))
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle (dump_and_exit "SIGTERM" 143))
  with Invalid_argument _ | Sys_error _ -> ()

let restore_default_handlers () =
  (try Sys.set_signal Sys.sigint Sys.Signal_default
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm Sys.Signal_default
  with Invalid_argument _ | Sys_error _ -> ()

(* Run one problem through the selected engine with the requested
   observability and print the verdict block.  Returns the engine
   result; registry bookkeeping is left to the callers (a VNNLIB spec
   appends one joined record for several of these runs). *)
let verify_core problem engine lambda c heuristic appver calls seconds trace_file
    progress stats no_cache domains introspect flight_path lp_triage no_lp_warm
    ~context =
  let heuristic =
    match Abonn_bab.Branching.find heuristic with
    | Some h -> h
    | None -> Abonn_bab.Branching.default
  in
  let appver =
    if appver = "lp" then Abonn_lp.Lp_verifier.appver
    else
      match Abonn_prop.Appver.find appver with
      | Some v -> v
      | None -> Abonn_prop.Appver.deeppoly
  in
  (* --lp-triage: cheap DeepPoly bounds on every node, LP only for the
     nodes that survive the escalation criterion (DESIGN.md §13) *)
  let appver =
    match lp_triage with
    | Some crit ->
      Abonn_prop.Appver.triaged ~crit ~cheap:Abonn_prop.Appver.deeppoly
        ~expensive:Abonn_lp.Lp_verifier.appver ()
    | None -> appver
  in
  Abonn_lp.Lp_verifier.set_warm_enabled (not no_lp_warm);
  let budget = Budget.combine ~calls ?seconds () in
  Introspect.set introspect;
  let flight = Option.map (fun _ -> Sink.flight ()) flight_path in
  (match (flight, flight_path) with
   | Some fl, Some path -> install_flight_handlers fl path
   | _ -> ());
  match
    (* --no-bound-cache: drop warm-started incremental propagation and
       restore the from-scratch bound path bit-for-bit *)
    Abonn_prop.Incremental.with_enabled (not no_cache) @@ fun () ->
    with_observability ~trace_file ~progress ~stats ~flight (fun () ->
        match engine with
        | "abonn" ->
          let config = Abonn_core.Config.make ~lambda ~c ~appver ~heuristic () in
          Abonn_core.Abonn.verify ~config ~budget ~domains problem
        | "bab-baseline" ->
          Abonn_bab.Bfs.verify ~appver ~heuristic ~budget ~domains problem
        | "bestfirst" ->
          Abonn_bab.Bestfirst.verify ~appver ~heuristic ~budget ~domains problem
        | "inputsplit" -> Abonn_bab.Inputsplit.verify ~appver ~budget ~domains problem
        | "ab-crown" -> Abonn_crown.Alphabeta.verify ~budget ~domains problem
        | other ->
          Printf.eprintf "unknown engine %s; using abonn\n%!" other;
          Abonn_core.Abonn.verify ~budget ~domains problem)
  with
  | exception Sys_error msg ->
    restore_default_handlers ();
    Error msg
  | result ->
  restore_default_handlers ();
  (* post-mortem dump on budget exhaustion: a timed-out run is exactly
     the one whose tail of events is worth inspecting *)
  (match (result.Result.verdict, flight, flight_path) with
   | Verdict.Timeout, Some (_, fl), Some path ->
     Sink.flight_dump fl path;
     Printf.printf "flight recorder dumped to: %s (budget exhausted)\n" path
   | _ -> ());
  Printf.printf "%s engine=%s\n" context engine;
  Printf.printf "verdict: %s\n" (Verdict.to_string result.Result.verdict);
  Printf.printf "appver calls: %d\n" result.Result.stats.Result.appver_calls;
  Printf.printf "tree nodes:   %d (max depth %d)\n" result.Result.stats.Result.nodes
    result.Result.stats.Result.max_depth;
  Printf.printf "wall time:    %.3fs\n" result.Result.stats.Result.wall_time;
  (match Verdict.counterexample result.Result.verdict with
   | Some x ->
     let margin = Abonn_spec.Problem.concrete_margin problem x in
     Printf.printf "counterexample margin: %.6f (<= 0 confirms violation)\n" margin
   | None -> ());
  Option.iter (Printf.printf "trace written to: %s\n") trace_file;
  if stats then begin
    print_newline ();
    print_string (Abonn_harness.Report.stats (Metrics.snapshot ()));
    Metrics.set_enabled false
  end;
  Ok result

let append_registry registry ~domains ~engine ~model ~instance ~source_format
    ~verdict ~wall ~calls ~nodes ~max_depth =
  Option.iter
    (fun path ->
      Registry.append ~path
        (Registry.make ~domains ~engine ~model ~instance ~seed:0 ~source_format
           ~verdict ~wall ~calls ~nodes ~max_depth ());
      Printf.printf "registry record appended to: %s\n" path)
    registry

let verify_problem problem engine lambda c heuristic appver calls seconds trace_file
    progress stats no_cache registry domains introspect flight_path lp_triage
    no_lp_warm ~model ~instance ~context ~source_format =
  match
    verify_core problem engine lambda c heuristic appver calls seconds trace_file
      progress stats no_cache domains introspect flight_path lp_triage no_lp_warm
      ~context
  with
  | Error msg -> `Error (false, msg)
  | Ok result ->
    append_registry registry ~domains ~engine ~model ~instance ~source_format
      ~verdict:(Verdict.to_string result.Result.verdict)
      ~wall:result.Result.stats.Result.wall_time
      ~calls:result.Result.stats.Result.appver_calls
      ~nodes:result.Result.stats.Result.nodes
      ~max_depth:result.Result.stats.Result.max_depth;
    `Ok ()

(* An ONNX+VNNLIB pair: one BaB run per violation disjunct, stopping
   early at the first counterexample, then the DNF verdict join
   (Abonn_spec.Vnnlib).  One registry record summarises the whole spec
   (summed cost, joined verdict, source_format = "onnx+vnnlib"). *)
let verify_spec problems engine lambda c heuristic appver calls seconds trace_file
    progress stats no_cache registry domains introspect flight_path lp_triage
    no_lp_warm ~model ~instance ~context =
  let total = List.length problems in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | problem :: rest -> (
      match
        verify_core problem engine lambda c heuristic appver calls seconds
          trace_file progress stats no_cache domains introspect flight_path
          lp_triage no_lp_warm
          ~context:(Printf.sprintf "%s disjunct=%d/%d" context (i + 1) total)
      with
      | Error msg -> Error msg
      | Ok result ->
        let acc = result :: acc in
        if Verdict.is_falsified result.Result.verdict then Ok (List.rev acc)
        else go (i + 1) acc rest)
  in
  match go 0 [] problems with
  | Error msg -> `Error (false, msg)
  | Ok results ->
    let verdicts = List.map (fun r -> r.Result.verdict) results in
    let joined = Abonn_spec.Vnnlib.join_verdicts verdicts in
    let sum f = List.fold_left (fun acc r -> acc + f r.Result.stats) 0 results in
    let wall =
      List.fold_left (fun acc r -> acc +. r.Result.stats.Result.wall_time) 0.0 results
    in
    if total > 1 then
      Printf.printf "joined verdict: %s (%d/%d disjuncts run)\n"
        (Verdict.to_string joined) (List.length results) total;
    append_registry registry ~domains ~engine ~model ~instance
      ~source_format:"onnx+vnnlib" ~verdict:(Verdict.to_string joined) ~wall
      ~calls:(sum (fun s -> s.Result.appver_calls))
      ~nodes:(sum (fun s -> s.Result.nodes))
      ~max_depth:
        (List.fold_left
           (fun acc r -> max acc r.Result.stats.Result.max_depth)
           0 results);
    `Ok ()

let run problem_file onnx_file vnnlib_file model_name index eps factor engine lambda c
    heuristic appver calls seconds models_dir trace_file progress stats no_cache
    registry domains introspect flight no_flight lp_triage no_lp_warm =
  let flight_path = if no_flight then None else Some flight in
  try
    match (problem_file, onnx_file, vnnlib_file) with
    | Some _, Some _, _ | Some _, _, Some _ ->
      `Error (true, "--problem and --onnx/--vnnlib are mutually exclusive")
    | None, Some _, None | None, None, Some _ ->
      `Error (true, "--onnx and --vnnlib must be given together")
    | Some path, None, None ->
      let problem = Abonn_spec.Problem_file.load path in
      verify_problem problem engine lambda c heuristic appver calls seconds trace_file
        progress stats no_cache registry domains introspect flight_path lp_triage
        no_lp_warm ~model:"problem-file"
        ~instance:(Filename.basename path)
        ~context:(Printf.sprintf "problem=%s" path)
        ~source_format:"native"
    | None, Some onnx_path, Some vnnlib_path ->
      let network = Abonn_nn.Onnx.load onnx_path in
      let spec = Abonn_spec.Vnnlib.load vnnlib_path in
      let name = Filename.remove_extension (Filename.basename vnnlib_path) in
      let problems = Abonn_spec.Vnnlib.problems ~name ~network spec in
      verify_spec problems engine lambda c heuristic appver calls seconds trace_file
        progress stats no_cache registry domains introspect flight_path lp_triage
        no_lp_warm
        ~model:(Filename.basename onnx_path)
        ~instance:(Filename.basename vnnlib_path)
        ~context:(Printf.sprintf "onnx=%s vnnlib=%s" onnx_path vnnlib_path)
    | None, None, None -> (
      match Models.find model_name with
      | None ->
        `Error
          (false,
           Printf.sprintf "unknown model %s (try: %s)" model_name
             (String.concat ", " (List.map (fun s -> s.Models.name) Models.all)))
      | Some spec ->
        let trained = Models.train_cached ~dir:models_dir spec in
        (match build_problem trained index eps factor with
         | `Error _ as e -> e
         | `Ok (problem, eps) ->
           verify_problem problem engine lambda c heuristic appver calls seconds
             trace_file progress stats no_cache registry domains introspect
             flight_path lp_triage no_lp_warm ~model:model_name
             ~instance:(Printf.sprintf "index%d_eps%.5g" index eps)
             ~context:(Printf.sprintf "model=%s index=%d eps=%.5f" model_name index eps)
             ~source_format:"synthetic"))
  with
  | Abonn_util.Parse_error.Error e ->
    `Error (false, Abonn_util.Parse_error.to_string e)
  | Sys_error msg | Invalid_argument msg -> `Error (false, msg)

let problem_arg =
  Arg.(value & opt (some string) None
       & info [ "problem" ] ~docv:"FILE"
           ~doc:"Verify a problem file (see Abonn_spec.Problem_file) instead of a zoo model.")

let onnx_arg =
  Arg.(value & opt (some string) None
       & info [ "onnx" ] ~docv:"FILE"
           ~doc:"ONNX network to verify (requires --vnnlib; see docs/FORMATS.md for \
                 the supported operator subset).")

let vnnlib_arg =
  Arg.(value & opt (some string) None
       & info [ "vnnlib" ] ~docv:"FILE"
           ~doc:"VNNLIB property for --onnx: input box plus a DNF of output \
                 constraints; one BaB run per disjunct, verdicts joined \
                 (docs/FORMATS.md).")

let model_arg =
  Arg.(value & opt string "mnist_l2" & info [ "model" ] ~docv:"NAME" ~doc:"Benchmark model.")

let index_arg =
  Arg.(value & opt int 0 & info [ "index" ] ~docv:"I" ~doc:"Test-image index.")

let eps_arg =
  Arg.(value & opt (some float) None & info [ "eps" ] ~docv:"E" ~doc:"Perturbation radius.")

let factor_arg =
  Arg.(value & opt float 1.1
       & info [ "factor" ] ~docv:"F"
           ~doc:"Radius as a multiple of the certified radius (used when --eps is absent).")

let engine_arg =
  Arg.(value & opt string "abonn"
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"One of abonn, bab-baseline, bestfirst, inputsplit, ab-crown.")

let lambda_arg =
  Arg.(value & opt float 0.5 & info [ "lambda" ] ~docv:"L" ~doc:"Def. 1 depth weight.")

let c_arg =
  Arg.(value & opt float 0.2 & info [ "c" ] ~docv:"C" ~doc:"UCB1 exploration constant.")

let heuristic_arg =
  Arg.(value & opt string "deepsplit"
       & info [ "heuristic" ] ~docv:"H" ~doc:"deepsplit, babsr, fsb or widest.")

let appver_arg =
  Arg.(value & opt string "deeppoly"
       & info [ "appver" ] ~docv:"V" ~doc:"deeppoly, deeppoly-zero, deeppoly-one, zonotope, symbolic, interval or lp.")

let calls_arg =
  Arg.(value & opt int 2000 & info [ "calls" ] ~docv:"N" ~doc:"AppVer-call budget.")

let seconds_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc:"Wall-clock budget.")

let models_dir_arg =
  Arg.(value & opt string "models" & info [ "models-dir" ] ~docv:"DIR" ~doc:"Weight cache.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL trace of the run (schema: docs/TRACE_SCHEMA.md).")

let progress_arg =
  Arg.(value & opt ~vopt:(Some 2.0) (some float) None
       & info [ "progress" ] ~docv:"SECS"
           ~doc:"Print a live single-line heartbeat (elapsed, calls, nodes, depth, best \
                 reward) to stderr, refreshed every $(docv) seconds (default 2).")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print per-subsystem counters, timers and histograms after the run.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-bound-cache" ]
           ~doc:"Disable incremental (warm-started) bound propagation: every BaB node \
                 recomputes its bounds from scratch, restoring the pre-cache search \
                 path bit-for-bit.")

let domains_arg =
  Arg.(value & opt int (Abonn_par.Pool.default_domains ())
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the BaB search (default 1).  With 1 the engine is \
                 the sequential one, bit-for-bit; with more, the frontier is sharded \
                 across a work-stealing pool of OCaml 5 domains — verdicts of complete \
                 runs are unchanged, exploration order is not (docs/PARALLELISM.md).  \
                 The ABONN_DOMAINS environment variable sets the library-level default \
                 but this flag wins.")

(* "1/16" or "16" -> every 16th decision; "1" -> every decision *)
let introspect_conv =
  let parse s =
    let rate =
      match String.index_opt s '/' with
      | Some i ->
        (match
           ( int_of_string_opt (String.sub s 0 i),
             int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
         with
         | Some 1, Some d when d >= 1 -> Some d
         | _ -> None)
      | None -> (match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
    in
    match rate with
    | Some n -> Ok n
    | None -> Error (`Msg (Printf.sprintf "expected 1/N or N (got %S)" s))
  in
  let print ppf n = Format.fprintf ppf "1/%d" n in
  Arg.conv (parse, print)

let introspect_arg =
  Arg.(value & opt ~vopt:(Some 1) (some introspect_conv) None
       & info [ "introspect" ] ~docv:"RATE"
           ~doc:"Record search-policy decision events in the trace: UCB \
                 exploitation/exploration terms of both children at every ABONN \
                 selection, branching-heuristic winner vs runner-up scores, and \
                 frontier priorities.  $(docv) is a sampling rate — $(b,1/16) (or \
                 $(b,16)) records every 16th decision, bare $(b,--introspect) \
                 records every one.  Off by default; never changes the search \
                 (DESIGN.md \xC2\xA712).")

let flight_arg =
  Arg.(value & opt string (Filename.concat "results" "flight.jsonl")
       & info [ "flight" ] ~docv:"FILE"
           ~doc:"Where the always-on flight recorder dumps its ring of recent \
                 events when the run is interrupted (SIGINT/SIGTERM) or times \
                 out (default results/flight.jsonl, readable by every \
                 abonn_trace command).")

let no_flight_arg =
  Arg.(value & flag
       & info [ "no-flight" ]
           ~doc:"Disable the flight recorder entirely (no ring buffer, no \
                 signal handlers).")

(* "lb=0.5,depth=3,impr=0.1,window=32" -> a triage criterion; every key
   is optional and defaults to Appver.default_triage *)
let triage_conv =
  let parse s =
    let crit = ref Abonn_prop.Appver.default_triage in
    let bad = ref None in
    if String.trim s <> "" then
      List.iter
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i ->
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            (match (k, float_of_string_opt v, int_of_string_opt v) with
             | "lb", Some f, _ -> crit := { !crit with Abonn_prop.Appver.lb_threshold = f }
             | "impr", Some f, _ ->
               crit := { !crit with Abonn_prop.Appver.impr_threshold = f }
             | "depth", _, Some n ->
               crit := { !crit with Abonn_prop.Appver.depth_threshold = n }
             | "window", _, Some n when n >= 1 ->
               crit := { !crit with Abonn_prop.Appver.window = n }
             | _ -> bad := Some kv)
          | None -> bad := Some kv)
        (String.split_on_char ',' s);
    match !bad with
    | None -> Ok !crit
    | Some kv ->
      Error
        (`Msg
           (Printf.sprintf
              "bad triage field %S (expected lb=F, depth=N, impr=F or window=N)" kv))
  in
  let print ppf (c : Abonn_prop.Appver.triage_crit) =
    Format.fprintf ppf "lb=%g,depth=%d,impr=%g,window=%d"
      c.Abonn_prop.Appver.lb_threshold c.Abonn_prop.Appver.depth_threshold
      c.Abonn_prop.Appver.impr_threshold c.Abonn_prop.Appver.window
  in
  Arg.conv (parse, print)

let lp_triage_arg =
  Arg.(value
       & opt ~vopt:(Some Abonn_prop.Appver.default_triage) (some triage_conv) None
       & info [ "lp-triage" ] ~docv:"SPEC"
           ~doc:"Bound every node with DeepPoly first and escalate to the LP \
                 verifier only for nodes that survive the criterion (overrides \
                 --appver): undecided with phat >= -lb, at depth >= depth, and \
                 while escalations keep tightening by >= impr on average over a \
                 window.  $(docv) is a comma list of lb=F, depth=N, impr=F, \
                 window=N; bare $(b,--lp-triage) uses lb=0.5, depth=0, impr=0.1, \
                 window=32 (DESIGN.md \xC2\xA713).")

let no_lp_warm_arg =
  Arg.(value & flag
       & info [ "no-lp-warm" ]
           ~doc:"Disable warm-started LP reoptimization (basis cache, dual \
                 simplex): every LP verifier call solves from scratch, \
                 bit-for-bit the cold path.")

let registry_arg =
  Arg.(value & opt ~vopt:(Some Registry.default_path) (some string) None
       & info [ "registry" ] ~docv:"FILE"
           ~doc:"Append one run-registry record (model, engine, verdict, wall, nodes, \
                 peak RSS, commit) to $(docv) after the run (default \
                 results/registry.jsonl).")

let cmd =
  let doc = "ABONN: adaptive branch-and-bound neural-network verification" in
  Cmd.v
    (Cmd.info "abonn" ~doc)
    Term.(
      ret
        (const run $ problem_arg $ onnx_arg $ vnnlib_arg $ model_arg $ index_arg
         $ eps_arg $ factor_arg $ engine_arg
         $ lambda_arg $ c_arg $ heuristic_arg $ appver_arg $ calls_arg $ seconds_arg
         $ models_dir_arg $ trace_arg $ progress_arg $ stats_arg $ no_cache_arg
         $ registry_arg $ domains_arg $ introspect_arg $ flight_arg $ no_flight_arg
         $ lp_triage_arg $ no_lp_warm_arg))

let () = exit (Cmd.eval cmd)
