(* gen_formats: maintain the formats conformance corpus.

     gen_formats --check          # CI: committed fixtures == recipes?
     gen_formats                  # rewrite test/fixtures/formats

   The recipes live in Abonn_check.Formats_corpus; regenerate (and
   commit the diff) only after an intentional format change. *)

module Corpus = Abonn_check.Formats_corpus

let () =
  let dir = ref (Filename.concat "test" (Filename.concat "fixtures" "formats")) in
  let check = ref false in
  Arg.parse
    [ ("--dir", Arg.Set_string dir, "DIR corpus directory (default test/fixtures/formats)");
      ("--check", Arg.Set check, " verify committed fixtures instead of writing") ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "gen_formats [--check] [--dir DIR]";
  if !check then begin
    match Corpus.check_dir !dir with
    | [] -> Printf.printf "formats corpus OK (%d fixtures)\n" (List.length (Corpus.entries ()))
    | mismatches ->
      List.iter
        (fun (name, reason) -> Printf.eprintf "MISMATCH %s: %s\n" name reason)
        mismatches;
      Printf.eprintf
        "formats corpus out of date; run `dune exec bin/gen_formats.exe` and commit\n";
      exit 1
  end
  else begin
    Corpus.write_dir !dir;
    Printf.printf "wrote %d fixtures to %s\n" (List.length (Corpus.entries ())) !dir
  end
