(* Node-throughput benchmark for the incremental bound cache and the
   work-stealing domain pool.

     dune exec bench/bab_nodes.exe
     dune exec bench/bab_nodes.exe -- --json BENCH_bab_nodes.json
     dune exec bench/bab_nodes.exe -- --domains 4 --json BENCH_bab_nodes.json

   Runs the same best-first BaB searches twice — warm-started bound
   propagation on (default) and off (--no-bound-cache path) — and
   reports nodes explored per second for each, plus the speedup ratio.
   The instances are deep MLPs whose searches reach depth >= 4, where
   prefix reuse pays: a child split at hidden layer l skips the
   backsubstitution of every layer below l.  The verdicts of the two
   runs are asserted identical, so the ratio compares equal work.

   [--domains N[,M,...]] adds one row per instance per requested domain
   count ("name@dN"): the same search on an N-domain work-stealing pool
   (cache on), whose "speedup" column is parallel-over-sequential
   throughput.  The rows flow through the regression gate
   (abonn_trace bench) like any other.  Honest-measurement note: the
   parallel speedup is bounded by the physical core count — on a
   single-core container @d4 rows sit at or below 1.0x and only the
   regression gate's relative comparison is meaningful there (see
   docs/PARALLELISM.md).

   [--flight] adds "name@flight" rows (the sequential search with the
   flight-recorder ring sink installed) and [--introspect N] adds
   "name@iN" rows (ring sink plus decision sampling at 1/N).  Their
   "speedup" columns are variant-over-base throughput, i.e. 1 minus the
   instrumentation overhead; [abonn_trace bench --overhead flight:2
   --overhead i16:5] turns them into a CI gate on the overhead contract
   (docs/DESIGN.md §12). *)

module Rng = Abonn_util.Rng
module Obs = Abonn_obs.Obs
module Sink = Abonn_obs.Sink
module Introspect = Abonn_obs.Introspect
module Budget = Abonn_util.Budget
module Provenance = Abonn_util.Provenance
module Resource = Abonn_obs.Resource
module Registry = Abonn_trace.Registry
module Builder = Abonn_nn.Builder
module Network = Abonn_nn.Network
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Verdict = Abonn_spec.Verdict
module Incremental = Abonn_prop.Incremental
module Bestfirst = Abonn_bab.Bestfirst
module Branching = Abonn_bab.Branching
module Result = Abonn_bab.Result

let mlp_problem ~dims ~eps seed =
  let rng = Rng.create seed in
  let network = Builder.mlp rng ~dims in
  let dim = List.hd dims in
  let center = Array.init dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let label = Network.predict network center in
  let property =
    Property.robustness ~num_classes:(List.nth dims (List.length dims - 1)) ~label
  in
  Problem.create ~network ~region ~property ()

(* The widest-interval heuristic concentrates splits in deep layers
   (interval width accumulates with depth), which is where prefix reuse
   skips the most work; it is also a heuristic the CLI exposes. *)
let heuristic =
  match Branching.find "widest" with
  | Some h -> h
  | None -> Branching.default

let calls = 400
let repeats = 3

(* domains is pinned explicitly everywhere (1 for the cache rows) so an
   ambient ABONN_DOMAINS cannot silently flip the sequential baseline *)
let timed_run ~cache ~domains problem =
  Incremental.with_enabled cache @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let r =
    Bestfirst.verify ~heuristic ~budget:(Budget.of_calls calls) ~domains problem
  in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt)

(* nodes/sec over [repeats] runs; the repeat loop amortises timer noise
   on these sub-second searches. *)
let throughput ~cache ~domains problem =
  let nodes = ref 0 and time = ref 0.0 and last = ref None in
  for _ = 1 to repeats do
    let r, dt = timed_run ~cache ~domains problem in
    nodes := !nodes + r.Result.stats.Result.nodes;
    time := !time +. dt;
    last := Some r
  done;
  let r = Option.get !last in
  (float_of_int !nodes /. !time, r)

type row = {
  name : string;
  nodes : int;
  max_depth : int;
  verdict : string;
  nps_cached : float;
  nps_uncached : float;
  speedup : float;
  peak_rss_bytes : int;
  calls_used : int;
  wall : float;
  seed : int;
  domains : int;
}

(* A decided-vs-decided disagreement would be a soundness bug; a
   decided-vs-timeout difference is just a trajectory shift (tighter
   cached bounds, or parallel scheduling) inside a finite budget. *)
let check_verdicts name what a b =
  if (Verdict.is_verified a && Verdict.is_falsified b)
     || (Verdict.is_falsified a && Verdict.is_verified b)
  then
    failwith
      (Printf.sprintf "%s: verdict conflict %s (%s vs %s)" name what
         (Verdict.to_string a) (Verdict.to_string b))

(* Same sequential cache-on search with a flight ring sink installed
   (and, for @iN rows, decision sampling at 1/N); the sink is removed
   and closed even if the search dies. *)
let throughput_instrumented ?introspect problem =
  let sink, _ = Sink.flight () in
  Obs.install sink;
  Fun.protect
    ~finally:(fun () ->
      Obs.remove sink;
      sink.Sink.close ())
    (fun () ->
      Introspect.with_rate introspect @@ fun () ->
      ignore (timed_run ~cache:true ~domains:1 problem);
      throughput ~cache:true ~domains:1 problem)

let bench_instance ~domain_sweep ~flight ~introspect (name, seed, make_problem) =
  let problem = make_problem () in
  (* one throwaway pass per mode so both measurements run warm *)
  ignore (timed_run ~cache:false ~domains:1 problem);
  ignore (timed_run ~cache:true ~domains:1 problem);
  let nps_uncached, r_off = throughput ~cache:false ~domains:1 problem in
  let nps_cached, r_on = throughput ~cache:true ~domains:1 problem in
  check_verdicts name "cache on/off" r_on.Result.verdict r_off.Result.verdict;
  let base =
    { name;
      nodes = r_on.Result.stats.Result.nodes;
      max_depth = r_on.Result.stats.Result.max_depth;
      verdict = Verdict.to_string r_on.Result.verdict;
      nps_cached;
      nps_uncached;
      speedup = nps_cached /. nps_uncached;
      peak_rss_bytes = Resource.peak_rss ();
      calls_used = r_on.Result.stats.Result.appver_calls;
      wall = r_on.Result.stats.Result.wall_time;
      seed;
      domains = 1 }
  in
  (* instrumentation-overhead rows: variant-over-base throughput *)
  let instrumented_row suffix introspect =
    let nps_var, r_var = throughput_instrumented ?introspect problem in
    check_verdicts name
      (Printf.sprintf "plain vs %s" suffix)
      r_on.Result.verdict r_var.Result.verdict;
    { base with
      name = Printf.sprintf "%s@%s" name suffix;
      nps_cached = nps_var;
      nps_uncached = nps_cached;
      speedup = nps_var /. nps_cached;
      peak_rss_bytes = Resource.peak_rss ();
      calls_used = r_var.Result.stats.Result.appver_calls;
      wall = r_var.Result.stats.Result.wall_time }
  in
  let flight_rows = if flight then [ instrumented_row "flight" None ] else [] in
  let introspect_rows =
    List.map
      (fun n -> instrumented_row (Printf.sprintf "i%d" n) (Some n))
      introspect
  in
  (* parallel rows: same search, cache on, N-domain pool.  nps_uncached
     holds the sequential cache-on throughput, so speedup reads as
     parallel-over-sequential. *)
  let par_rows =
    List.map
      (fun domains ->
        ignore (timed_run ~cache:true ~domains problem);
        let nps_par, r_par = throughput ~cache:true ~domains problem in
        check_verdicts name
          (Printf.sprintf "sequential vs %d domains" domains)
          r_on.Result.verdict r_par.Result.verdict;
        { name = Printf.sprintf "%s@d%d" name domains;
          nodes = r_par.Result.stats.Result.nodes;
          max_depth = r_par.Result.stats.Result.max_depth;
          verdict = Verdict.to_string r_par.Result.verdict;
          nps_cached = nps_par;
          nps_uncached = nps_cached;
          speedup = nps_par /. nps_cached;
          peak_rss_bytes = Resource.peak_rss ();
          calls_used = r_par.Result.stats.Result.appver_calls;
          wall = r_par.Result.stats.Result.wall_time;
          seed;
          domains })
      (List.filter (fun d -> d > 1) domain_sweep)
  in
  (base :: flight_rows) @ introspect_rows @ par_rows

let instances =
  [ ("mlp_d6_seed1", 1,
     fun () -> mlp_problem ~dims:[ 4; 24; 24; 24; 24; 24; 24; 2 ] ~eps:0.22 1);
    ("mlp_d6_seed5", 5,
     fun () -> mlp_problem ~dims:[ 4; 24; 24; 24; 24; 24; 24; 2 ] ~eps:0.22 5);
    ("mlp_d8_seed3", 3,
     fun () -> mlp_problem ~dims:[ 3; 20; 20; 20; 20; 20; 20; 20; 20; 2 ] ~eps:0.2 3);
    (* the ACAS-style front-end instance (lib/data/acas.ml): same
       network family the --onnx/--vnnlib tutorial verifies, sized to
       stay sub-second per run on CI *)
    ("acas_h4w20_p1", 1,
     fun () ->
       Abonn_data.Acas.problem ~hidden_layers:4 ~width:20 ~seed:1 Abonn_data.Acas.P1) ]

(* Stamped layout (schema 1): provenance at top level, instances nested
   under "rows".  The regression gate (lib/trace/regress.ml) reads this
   and the historical flat layout. *)
let write_json path rows geomean =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "{\n  \"schema\": 1,\n  \"commit\": %S,\n  \"date\": %S,\n"
       (Provenance.git_commit ()) (Provenance.iso_now ()));
  output_string oc "  \"rows\": {\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      output_string oc
        (Printf.sprintf
           "    %S: {\"nodes\": %d, \"max_depth\": %d, \"verdict\": %S, \
            \"nodes_per_sec_cached\": %.1f, \"nodes_per_sec_uncached\": %.1f, \
            \"speedup\": %.3f, \"peak_rss_bytes\": %d}%s\n"
           r.name r.nodes r.max_depth r.verdict r.nps_cached r.nps_uncached r.speedup
           r.peak_rss_bytes
           (if i = last then "" else ",")))
    rows;
  output_string oc "  },\n";
  output_string oc (Printf.sprintf "  \"geomean_speedup\": %.3f\n}\n" geomean);
  close_out oc;
  Printf.printf "json results written to: %s\n%!" path

let json_path =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* --domains N[,M,...]: add an @dN row per instance per requested count *)
let domain_sweep =
  let rec scan = function
    | "--domains" :: spec :: _ ->
      List.filter_map int_of_string_opt (String.split_on_char ',' spec)
    | _ :: rest -> scan rest
    | [] -> []
  in
  scan (Array.to_list Sys.argv)

(* --flight: add an @flight row per instance (ring sink installed) *)
let flight = Array.exists (String.equal "--flight") Sys.argv

(* --introspect N[,M,...]: add an @iN row per instance per rate *)
let introspect =
  let rec scan = function
    | "--introspect" :: spec :: _ ->
      List.filter_map int_of_string_opt (String.split_on_char ',' spec)
    | _ :: rest -> scan rest
    | [] -> []
  in
  scan (Array.to_list Sys.argv)

let () =
  Printf.printf "%-20s %6s %6s %10s %12s %14s %8s %9s\n" "instance" "nodes" "depth"
    "verdict" "cached n/s" "uncached n/s" "speedup" "peak MiB";
  Printf.printf "%s\n" (String.make 92 '-');
  let rows =
    List.concat_map (bench_instance ~domain_sweep ~flight ~introspect) instances
  in
  List.iter
    (fun r ->
      Printf.printf "%-20s %6d %6d %10s %12.1f %14.1f %7.2fx %9.1f\n" r.name r.nodes
        r.max_depth r.verdict r.nps_cached r.nps_uncached r.speedup
        (float_of_int r.peak_rss_bytes /. (1024.0 *. 1024.0)))
    rows;
  (* the headline geomean stays over the cache rows only: @dN speedups
     measure parallelism (and are core-count-bound), not the cache, and
     must not shift the gate's comparison against historical baselines *)
  let cache_rows =
    List.filter (fun r -> not (String.contains r.name '@')) rows
  in
  let geomean =
    exp (List.fold_left (fun acc r -> acc +. log r.speedup) 0.0 cache_rows
         /. float_of_int (List.length cache_rows))
  in
  Printf.printf "\ngeomean speedup: %.2fx\n" geomean;
  Option.iter (fun path -> write_json path rows geomean) json_path;
  (* bench runs are campaign runs too: one registry record per instance
     so cross-commit comparisons can join on (instance, commit) *)
  List.iter
    (fun r ->
      Registry.append
        (Registry.make ~source_format:"synthetic" ~engine:"bestfirst-bench"
           ~model:"bench_mlp" ~instance:r.name
           ~seed:r.seed ~domains:r.domains ~verdict:r.verdict ~wall:r.wall
           ~calls:r.calls_used ~nodes:r.nodes ~max_depth:r.max_depth
           ~peak_rss_bytes:r.peak_rss_bytes ()))
    rows;
  Printf.printf "(%d run records appended to %s)\n%!" (List.length rows)
    Registry.default_path
