(* Node-throughput benchmark for the incremental bound cache.

     dune exec bench/bab_nodes.exe
     dune exec bench/bab_nodes.exe -- --json BENCH_bab_nodes.json

   Runs the same best-first BaB searches twice — warm-started bound
   propagation on (default) and off (--no-bound-cache path) — and
   reports nodes explored per second for each, plus the speedup ratio.
   The instances are deep MLPs whose searches reach depth >= 4, where
   prefix reuse pays: a child split at hidden layer l skips the
   backsubstitution of every layer below l.  The verdicts of the two
   runs are asserted identical, so the ratio compares equal work. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Provenance = Abonn_util.Provenance
module Resource = Abonn_obs.Resource
module Registry = Abonn_trace.Registry
module Builder = Abonn_nn.Builder
module Network = Abonn_nn.Network
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Verdict = Abonn_spec.Verdict
module Incremental = Abonn_prop.Incremental
module Bestfirst = Abonn_bab.Bestfirst
module Branching = Abonn_bab.Branching
module Result = Abonn_bab.Result

let mlp_problem ~dims ~eps seed =
  let rng = Rng.create seed in
  let network = Builder.mlp rng ~dims in
  let dim = List.hd dims in
  let center = Array.init dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let label = Network.predict network center in
  let property =
    Property.robustness ~num_classes:(List.nth dims (List.length dims - 1)) ~label
  in
  Problem.create ~network ~region ~property ()

(* The widest-interval heuristic concentrates splits in deep layers
   (interval width accumulates with depth), which is where prefix reuse
   skips the most work; it is also a heuristic the CLI exposes. *)
let heuristic =
  match Branching.find "widest" with
  | Some h -> h
  | None -> Branching.default

let calls = 400
let repeats = 3

let timed_run ~cache problem =
  Incremental.with_enabled cache @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let r = Bestfirst.verify ~heuristic ~budget:(Budget.of_calls calls) problem in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt)

(* nodes/sec over [repeats] runs; the repeat loop amortises timer noise
   on these sub-second searches. *)
let throughput ~cache problem =
  let nodes = ref 0 and time = ref 0.0 and last = ref None in
  for _ = 1 to repeats do
    let r, dt = timed_run ~cache problem in
    nodes := !nodes + r.Result.stats.Result.nodes;
    time := !time +. dt;
    last := Some r
  done;
  let r = Option.get !last in
  (float_of_int !nodes /. !time, r)

type row = {
  name : string;
  nodes : int;
  max_depth : int;
  verdict : string;
  nps_cached : float;
  nps_uncached : float;
  speedup : float;
  peak_rss_bytes : int;
  calls_used : int;
  wall : float;
  seed : int;
}

let bench_instance (name, dims, eps, seed) =
  let problem = mlp_problem ~dims ~eps seed in
  (* one throwaway pass per mode so both measurements run warm *)
  ignore (timed_run ~cache:false problem);
  ignore (timed_run ~cache:true problem);
  let nps_uncached, r_off = throughput ~cache:false problem in
  let nps_cached, r_on = throughput ~cache:true problem in
  let v_on = Verdict.to_string r_on.Result.verdict in
  let v_off = Verdict.to_string r_off.Result.verdict in
  (* A decided-vs-decided disagreement would be a soundness bug; a
     decided-vs-timeout difference is just the tighter bounds changing
     which child the heuristic pops inside a finite budget. *)
  if Verdict.is_verified r_on.Result.verdict && Verdict.is_falsified r_off.Result.verdict
     || Verdict.is_falsified r_on.Result.verdict
        && Verdict.is_verified r_off.Result.verdict
  then
    failwith (Printf.sprintf "%s: verdict conflict cache on/off (%s vs %s)" name v_on v_off);
  { name;
    nodes = r_on.Result.stats.Result.nodes;
    max_depth = r_on.Result.stats.Result.max_depth;
    verdict = v_on;
    nps_cached;
    nps_uncached;
    speedup = nps_cached /. nps_uncached;
    peak_rss_bytes = Resource.peak_rss ();
    calls_used = r_on.Result.stats.Result.appver_calls;
    wall = r_on.Result.stats.Result.wall_time;
    seed }

let instances =
  [ ("mlp_d6_seed1", [ 4; 24; 24; 24; 24; 24; 24; 2 ], 0.22, 1);
    ("mlp_d6_seed5", [ 4; 24; 24; 24; 24; 24; 24; 2 ], 0.22, 5);
    ("mlp_d8_seed3", [ 3; 20; 20; 20; 20; 20; 20; 20; 20; 2 ], 0.2, 3) ]

(* Stamped layout (schema 1): provenance at top level, instances nested
   under "rows".  The regression gate (lib/trace/regress.ml) reads this
   and the historical flat layout. *)
let write_json path rows geomean =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "{\n  \"schema\": 1,\n  \"commit\": %S,\n  \"date\": %S,\n"
       (Provenance.git_commit ()) (Provenance.iso_now ()));
  output_string oc "  \"rows\": {\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      output_string oc
        (Printf.sprintf
           "    %S: {\"nodes\": %d, \"max_depth\": %d, \"verdict\": %S, \
            \"nodes_per_sec_cached\": %.1f, \"nodes_per_sec_uncached\": %.1f, \
            \"speedup\": %.3f, \"peak_rss_bytes\": %d}%s\n"
           r.name r.nodes r.max_depth r.verdict r.nps_cached r.nps_uncached r.speedup
           r.peak_rss_bytes
           (if i = last then "" else ",")))
    rows;
  output_string oc "  },\n";
  output_string oc (Printf.sprintf "  \"geomean_speedup\": %.3f\n}\n" geomean);
  close_out oc;
  Printf.printf "json results written to: %s\n%!" path

let json_path =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  Printf.printf "%-16s %6s %6s %10s %12s %14s %8s %9s\n" "instance" "nodes" "depth"
    "verdict" "cached n/s" "uncached n/s" "speedup" "peak MiB";
  Printf.printf "%s\n" (String.make 88 '-');
  let rows = List.map bench_instance instances in
  List.iter
    (fun r ->
      Printf.printf "%-16s %6d %6d %10s %12.1f %14.1f %7.2fx %9.1f\n" r.name r.nodes
        r.max_depth r.verdict r.nps_cached r.nps_uncached r.speedup
        (float_of_int r.peak_rss_bytes /. (1024.0 *. 1024.0)))
    rows;
  let geomean =
    exp (List.fold_left (fun acc r -> acc +. log r.speedup) 0.0 rows
         /. float_of_int (List.length rows))
  in
  Printf.printf "\ngeomean speedup: %.2fx\n" geomean;
  Option.iter (fun path -> write_json path rows geomean) json_path;
  (* bench runs are campaign runs too: one registry record per instance
     so cross-commit comparisons can join on (instance, commit) *)
  List.iter
    (fun r ->
      Registry.append
        (Registry.make ~engine:"bestfirst-bench" ~model:"bench_mlp" ~instance:r.name
           ~seed:r.seed ~verdict:r.verdict ~wall:r.wall ~calls:r.calls_used
           ~nodes:r.nodes ~max_depth:r.max_depth ~peak_rss_bytes:r.peak_rss_bytes ()))
    rows;
  Printf.printf "(%d run records appended to %s)\n%!" (List.length rows)
    Registry.default_path
