(* Benchmark harness: one Bechamel test per reproduced table/figure plus
   micro-benchmarks of the verification kernels.

     dune exec bench/main.exe
     dune exec bench/main.exe -- --json BENCH_kernels.json

   The table/figure benches run scaled-down versions of the §V artifacts
   (the full runs live in bin/experiments.exe); the kernel benches time
   one AppVer call per engine/model, which is the unit the paper's
   wall-clock measurements are made of.  Bechamel estimates the
   per-execution cost by OLS over repeated runs.  [--json FILE] appends
   a machine-readable snapshot (name -> ns/run) so the perf trajectory
   can be tracked across commits. *)

open Bechamel
open Toolkit
module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Experiment = Abonn_harness.Experiment
module Runner = Abonn_harness.Runner
module Budget = Abonn_util.Budget

(* Shared state, built once: a miniature benchmark suite. *)
let suite =
  Printf.printf "preparing mini benchmark suite (2 model families)...\n%!";
  Experiment.build_suite ~instances_per_model:3 ~epochs:8
    ~models:[ Models.mnist_l2; Models.cifar_base ] ()

let first_problem =
  match suite.Experiment.instances with
  | inst :: _ -> inst.Instances.problem
  | [] -> failwith "empty suite"

let mini_calls = 120

(* --- table/figure benches (one per §V artifact) --- *)

let bench_table1 =
  Test.make ~name:"table1" (Staged.stage (fun () -> Experiment.table1 suite))

let bench_fig3 =
  Test.make ~name:"fig3"
    (Staged.stage (fun () ->
         let rq = Experiment.rq1 ~calls:mini_calls ~engines:[ Runner.bab_baseline ] suite in
         Experiment.fig3 rq))

let bench_table2_rq1 =
  Test.make ~name:"table2_rq1"
    (Staged.stage (fun () ->
         let rq = Experiment.rq1 ~calls:mini_calls suite in
         Experiment.table2 rq))

let bench_fig4_scatter =
  Test.make ~name:"fig4_scatter"
    (Staged.stage (fun () ->
         let rq =
           Experiment.rq1 ~calls:mini_calls
             ~engines:[ Runner.bab_baseline; Runner.abonn () ]
             suite
         in
         Experiment.fig4 rq))

let bench_fig5_heatmap =
  Test.make ~name:"fig5_heatmap"
    (Staged.stage (fun () ->
         Experiment.rq2 ~calls:60 ~lambdas:[ 0.0; 0.5; 1.0 ] ~cs:[ 0.0; 0.2 ]
           ~max_instances:2 suite))

let bench_fig6_boxes =
  Test.make ~name:"fig6_boxes"
    (Staged.stage (fun () ->
         let rq =
           Experiment.rq1 ~calls:mini_calls
             ~engines:[ Runner.bab_baseline; Runner.abonn () ]
             suite
         in
         Experiment.rq3 rq))

let bench_ablation =
  Test.make ~name:"ablation"
    (Staged.stage (fun () -> Experiment.ablation ~calls:60 ~max_instances:2 suite))

(* --- kernel micro-benches --- *)

let bench_appver_deeppoly =
  Test.make ~name:"kernel_deeppoly_call"
    (Staged.stage (fun () -> Abonn_prop.Deeppoly.run first_problem []))

let bench_appver_interval =
  Test.make ~name:"kernel_interval_call"
    (Staged.stage (fun () -> Abonn_prop.Interval.run first_problem []))

let bench_appver_zonotope =
  Test.make ~name:"kernel_zonotope_call"
    (Staged.stage (fun () -> Abonn_prop.Zonotope.run first_problem []))

let bench_appver_symbolic =
  Test.make ~name:"kernel_symbolic_call"
    (Staged.stage (fun () -> Abonn_prop.Symbolic.run first_problem []))

let bench_appver_lp =
  Test.make ~name:"kernel_lp_call"
    (Staged.stage (fun () -> Abonn_lp.Lp_verifier.run first_problem []))

let bench_appver_lp_warm =
  (* one split below the root, phase matched to the region centre so the
     cell stays feasible: the call re-optimises the root's cached basis
     by dual simplex and reoptimizes the remaining property rows on the
     live tableau instead of solving every row cold (DESIGN.md §13) *)
  let child_gamma =
    let affine = first_problem.Abonn_spec.Problem.affine in
    let region = first_problem.Abonn_spec.Problem.region in
    let centre =
      Array.map2
        (fun lo hi -> 0.5 *. (lo +. hi))
        region.Abonn_spec.Region.lower region.Abonn_spec.Region.upper
    in
    let pre = Abonn_nn.Affine.pre_activations affine centre in
    let layer, idx = Abonn_nn.Affine.relu_position affine 0 in
    let phase =
      if pre.(layer).(idx) >= 0.0 then Abonn_spec.Split.Active
      else Abonn_spec.Split.Inactive
    in
    [ { Abonn_spec.Split.relu = 0; phase } ]
  in
  let root_state = snd (Abonn_lp.Lp_verifier.run_warm first_problem []) in
  Test.make ~name:"kernel_lp_warm"
    (Staged.stage (fun () ->
         Abonn_lp.Lp_verifier.run_warm ?state:root_state first_problem child_gamma))

let bench_engine_bfs =
  Test.make ~name:"engine_bfs_120calls"
    (Staged.stage (fun () ->
         Abonn_bab.Bfs.verify ~budget:(Budget.of_calls mini_calls) first_problem))

let bench_engine_abonn =
  Test.make ~name:"engine_abonn_120calls"
    (Staged.stage (fun () ->
         Abonn_core.Abonn.verify ~budget:(Budget.of_calls mini_calls) first_problem))

let bench_attack_pgd =
  Test.make ~name:"kernel_pgd_attack"
    (Staged.stage (fun () ->
         (Abonn_attack.Attack.pgd ()).Abonn_attack.Attack.run
           (Abonn_util.Rng.create 1) first_problem))

let tests =
  Test.make_grouped ~name:"abonn"
    [ bench_table1; bench_fig3; bench_table2_rq1; bench_fig4_scatter;
      bench_fig5_heatmap; bench_fig6_boxes; bench_ablation; bench_appver_deeppoly;
      bench_appver_interval; bench_appver_zonotope; bench_appver_symbolic; bench_appver_lp;
      bench_appver_lp_warm; bench_engine_bfs; bench_engine_abonn; bench_attack_pgd ]

(* name -> (ns/run estimate, r^2), nested under "rows" with schema,
   commit and date stamps at top level so numbers stay traceable to the
   code that produced them.  Non-finite estimates (no samples) are
   encoded as null. *)
let write_json path rows =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "{\n  \"schema\": 1,\n  \"commit\": %S,\n  \"date\": %S,\n"
       (Abonn_util.Provenance.git_commit ())
       (Abonn_util.Provenance.iso_now ()));
  output_string oc "  \"rows\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, est_ns, r2) ->
      let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
      output_string oc
        (Printf.sprintf "    %S: {\"ns_per_run\": %s, \"r_square\": %s}%s\n" name
           (num est_ns) (num r2)
           (if i = n - 1 then "" else ",")))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "json results written to: %s\n%!" path

let json_path =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 20.0) ~sampling:(`Linear 1) ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  print_newline ();
  Printf.printf "%-32s %16s %8s\n" "benchmark" "per-run" "r^2";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun (name, est_ns, r2) ->
      let pretty =
        if Float.is_nan est_ns then "n/a"
        else if est_ns > 1e9 then Printf.sprintf "%.3f s" (est_ns /. 1e9)
        else if est_ns > 1e6 then Printf.sprintf "%.3f ms" (est_ns /. 1e6)
        else Printf.sprintf "%.3f us" (est_ns /. 1e3)
      in
      Printf.printf "%-32s %16s %8.4f\n" name pretty r2)
    rows;
  Option.iter (fun path -> write_json path rows) json_path
